// Command iqsweep runs a grid sweep of one issue-queue organization over
// queues × entries (× chains for MixBUFF) and emits per-benchmark IPC and
// issue-logic energy in CSV, for plotting or regression tracking beyond
// the paper's fixed figure configurations.
//
// The whole grid is submitted to the experiment engine as one batch, so
// simulations shard across -parallel workers while the CSV rows stay in
// deterministic grid order; -cache-dir reuses results across invocations.
//
// Usage:
//
//	iqsweep -scheme MixBUFF -queues 4,8,12,16 -entries 8,16,32 -suite fp
//	iqsweep -scheme IssueFIFO -queues 8,16 -entries 8 -bench swim,gzip -distr
//	iqsweep -scheme MixBUFF -parallel 8 -cache-dir /tmp/distiq-cache
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"distiq"
)

func main() {
	var (
		scheme   = flag.String("scheme", "MixBUFF", "IssueFIFO, LatFIFO or MixBUFF (FP side; int side fixed per -intq)")
		queues   = flag.String("queues", "8,12", "comma-separated FP queue counts")
		entries  = flag.String("entries", "8,16", "comma-separated FP entries per queue")
		chains   = flag.String("chains", "0", "comma-separated chains per queue (MixBUFF; 0 = unbounded)")
		intq     = flag.String("intq", "16x16", "fixed integer queues AxB")
		suite    = flag.String("suite", "", "restrict to a suite: int or fp")
		benchCS  = flag.String("bench", "", "comma-separated benchmarks (default: suite or all)")
		distr    = flag.Bool("distr", false, "distribute functional units")
		n        = flag.Uint64("n", 60_000, "instructions per run")
		warmup   = flag.Uint64("warmup", 10_000, "warmup instructions")
		parallel = flag.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS, 1 = serial)")
		cacheDir = flag.String("cache-dir", "", "persistent result store directory, reused across runs")
		quiet    = flag.Bool("quiet", false, "suppress the progress reporter on stderr")
	)
	flag.Parse()

	var a, b int
	if _, err := fmt.Sscanf(*intq, "%dx%d", &a, &b); err != nil {
		fatal("bad -intq %q: %v", *intq, err)
	}
	benchmarks := pickBenchmarks(*suite, *benchCS)

	// Build the full grid first, in output order...
	type point struct {
		q, e, ch int
		cfg      distiq.Config
	}
	var grid []point
	for _, q := range ints(*queues) {
		for _, e := range ints(*entries) {
			for _, ch := range ints(*chains) {
				cfg, err := makeConfig(*scheme, a, b, q, e, ch, *distr)
				if err != nil {
					fatal("%v", err)
				}
				grid = append(grid, point{q, e, ch, cfg})
				if *scheme != "MixBUFF" {
					break // chains only vary for MixBUFF
				}
			}
		}
	}

	// ...shard it across the engine's worker pool...
	scfg := distiq.SessionConfig{
		Opt:      distiq.Options{Warmup: *warmup, Instructions: *n},
		Parallel: *parallel,
		CacheDir: *cacheDir,
	}
	var reporter *distiq.ConsoleReporter
	if !*quiet {
		reporter = distiq.NewConsoleReporter(os.Stderr)
		scfg.Progress = reporter.Report
	}
	s := distiq.NewSessionWith(scfg)
	cfgs := make([]distiq.Config, len(grid))
	for i, p := range grid {
		cfgs[i] = p.cfg
	}
	if err := s.Prefetch(benchmarks, cfgs...); err != nil {
		if reporter != nil {
			reporter.Finish()
		}
		fatal("%v", err)
	}

	// ...and emit rows from cache hits, byte-identical to a serial sweep.
	// (The Result calls below still report memory-hit progress; Finish
	// only after the last one so the status line ends terminated.)
	fmt.Println("scheme,queues,entries,chains,benchmark,ipc,iq_energy_pj,cycles")
	for _, p := range grid {
		for _, bench := range benchmarks {
			res, err := s.Result(bench, p.cfg)
			if err != nil {
				if reporter != nil {
					reporter.Finish()
				}
				fatal("%v", err)
			}
			fmt.Printf("%s,%d,%d,%d,%s,%.4f,%.1f,%d\n",
				*scheme, p.q, p.e, p.ch, bench, res.IPC(), res.IQEnergy, res.Cycles)
		}
	}
	if reporter != nil {
		reporter.Finish()
	}
}

func makeConfig(scheme string, a, b, q, e, chains int, distr bool) (distiq.Config, error) {
	var cfg distiq.Config
	switch scheme {
	case "IssueFIFO":
		cfg = distiq.IssueFIFOCfg(a, b, q, e)
	case "LatFIFO":
		cfg = distiq.LatFIFOCfg(a, b, q, e)
	case "MixBUFF":
		cfg = distiq.MixBUFFCfg(a, b, q, e, chains)
	default:
		return cfg, fmt.Errorf("unknown scheme %q", scheme)
	}
	cfg.DistributedFU = distr
	return cfg, cfg.Validate()
}

func pickBenchmarks(suite, list string) []string {
	if list != "" {
		return strings.Split(list, ",")
	}
	switch strings.ToLower(suite) {
	case "int":
		return distiq.Benchmarks(distiq.SuiteInt)
	case "fp":
		return distiq.Benchmarks(distiq.SuiteFP)
	case "":
		return distiq.AllBenchmarks()
	}
	fatal("unknown suite %q (int or fp)", suite)
	return nil
}

func ints(csv string) []int {
	var out []int
	for _, s := range strings.Split(csv, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			fatal("bad integer list %q: %v", csv, err)
		}
		out = append(out, v)
	}
	return out
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "iqsweep: "+format+"\n", args...)
	os.Exit(1)
}
