// Command iqsweep runs declarative experiment grids through the cached
// concurrent engine. A grid is either a JSON scenario spec (-spec) naming
// axes over the full machine — benchmarks/suites, issue-queue schemes and
// shapes, ROB size, pipeline widths, functional-unit counts, memory
// latencies, the perfect-disambiguation ablation — or the legacy
// queues × entries flags, which generate the equivalent spec
// (-dump-spec prints it).
//
// The grid runs through the Client layer: locally on the in-process
// engine (simulations shard across -parallel workers, -store selects a
// result-store backend reused across invocations) or, with -server, on
// one or more remote distiqd workers via their streaming endpoints — a
// comma-separated -server list shards the grid across the workers by
// job fingerprint and survives worker loss as long as one worker lives.
// Same grid, byte-identical output every way. Output rows stay in deterministic
// grid order; a warm rerun performs zero simulations and emits
// identical bytes. Ctrl-C cancels cleanly (exit 130): scheduling stops,
// in-flight simulations finish and persist, and a rerun completes only
// the remainder.
//
// Result-store backends (-store SPEC; -cache-dir DIR remains as the
// alias for -store fs:DIR):
//
//	fs:DIR                 on-disk distiq-v2 store
//	mem                    in-memory (one process)
//	http://host/           remote HTTP blob store (see internal/blobstore)
//	tier:mem,fs:DIR        read-through tiers, fastest first
//	batch:SPEC             write-behind group commit over SPEC
//
// Usage:
//
//	iqsweep -spec grid.json -cache-dir /tmp/distiq-cache
//	iqsweep -spec grid.json -store tier:mem,fs:/tmp/distiq-cache
//	iqsweep -spec grid.json -store batch:http://blobs.internal/
//	iqsweep -spec grid.json -server http://localhost:8090
//	iqsweep -spec grid.json -server http://worker1:8090,http://worker2:8090
//	iqsweep -spec grid.json -format md -o results.md
//	iqsweep -scheme MixBUFF -queues 4,8,12,16 -entries 8,16,32 -suite fp
//	iqsweep -scheme IssueFIFO -queues 8,16 -entries 8 -bench swim,gzip -distr
//	iqsweep -scheme MixBUFF -queues 8 -dump-spec   # flags -> spec JSON
//
// Integrity: -manifest writes the sweep's tamper-evident Merkle
// manifest (leaves are the content-addressed hashes of the stored
// result entries, in grid order), and -verify-manifest re-hashes a
// store offline against such a manifest, exiting non-zero if any byte
// of any covered entry changed — against any backend:
//
//	iqsweep -spec grid.json -cache-dir /tmp/c -manifest sweep.json
//	iqsweep -verify-manifest sweep.json -cache-dir /tmp/c
//	iqsweep -verify-manifest sweep.json -store http://blobs.internal/
//
// A spec sweeping scheme × ROB × perfect disambiguation:
//
//	{
//	  "name": "rob-ablation",
//	  "suites": ["fp"],
//	  "schemes": [{"scheme": "MB_distr"}, {"scheme": "IQ_64_64"}],
//	  "rob": [128, 256],
//	  "perfect_disambiguation": [false, true]
//	}
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"distiq"
	"distiq/internal/cliutil"
)

// errBadFlags marks a flag-parse failure the FlagSet already reported
// on stderr, so main does not print it a second time.
var errBadFlags = errors.New("bad flags")

func main() {
	stats, err := run(os.Args[1:], os.Stdout, os.Stderr)
	switch {
	case errors.Is(err, flag.ErrHelp):
		os.Exit(0)
	case errors.Is(err, errBadFlags):
		os.Exit(2)
	case err != nil:
		fmt.Fprintf(os.Stderr, "iqsweep: %v\n", err)
		// Bad user input (engine knobs, unknown formats) exits 2 like a
		// flag error; system failures exit 1.
		os.Exit(cliutil.ExitCode(err))
	}
	// -dump-spec (and any future no-run mode) requests nothing from the
	// engine; only summarize when jobs were actually resolved.
	if stats.Requested > 0 {
		fmt.Fprintf(os.Stderr, "iqsweep: %d simulated, %d memory hits, %d disk hits, %d deduplicated\n",
			stats.Simulated, stats.MemoryHits, stats.DiskHits, stats.Shared)
	}
}

// run parses argv, assembles the grid spec (from -spec or the legacy
// flags), executes it and writes the formatted results. It returns the
// engine counters so tests can assert warm-cache behaviour.
func run(argv []string, stdout, stderr io.Writer) (distiq.EngineStats, error) {
	fs := flag.NewFlagSet("iqsweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		specPath = fs.String("spec", "", "JSON scenario-grid spec file (overrides the legacy grid flags)")
		format   = fs.String("format", "csv", "output format: csv, json or md")
		outPath  = fs.String("o", "", "write output to this file instead of stdout")
		dumpSpec = fs.Bool("dump-spec", false, "print the effective spec as JSON and exit without simulating")

		scheme  = fs.String("scheme", "MixBUFF", "legacy grid: IssueFIFO, LatFIFO or MixBUFF (FP side; int side fixed per -intq)")
		queues  = fs.String("queues", "8,12", "legacy grid: comma-separated FP queue counts")
		entries = fs.String("entries", "8,16", "legacy grid: comma-separated FP entries per queue")
		chains  = fs.String("chains", "0", "legacy grid: comma-separated chains per queue (MixBUFF; 0 = unbounded)")
		intq    = fs.String("intq", "16x16", "legacy grid: fixed integer queues AxB")
		suite   = fs.String("suite", "", "restrict to a suite: int or fp")
		benchCS = fs.String("bench", "", "comma-separated benchmarks (default: suite or all)")
		distr   = fs.Bool("distr", false, "legacy grid: distribute functional units")
		n       = fs.Uint64("n", 60_000, "instructions per run")
		warmup  = fs.Uint64("warmup", 10_000, "warmup instructions")

		parallel  = fs.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS, 1 = serial; local runs)")
		cacheDir  = fs.String("cache-dir", "", "persistent result store directory (alias for -store fs:DIR; local runs)")
		storeSpec = fs.String("store", "", "result-store backend: fs:DIR, mem, http(s)://URL, tier:SPEC,..., batch:SPEC (local runs)")
		server    = fs.String("server", "", "run the sweep on distiqd workers instead of in-process: one base URL, or a comma-separated list sharded by job fingerprint")
		quiet     = fs.Bool("quiet", false, "suppress the progress reporter on stderr")

		manifestOut = fs.String("manifest", "", "write the sweep's tamper-evident Merkle manifest to this JSON file")
		verifyPath  = fs.String("verify-manifest", "", "verify a manifest file against the -store/-cache-dir store and exit (no sweep runs)")
	)
	if err := fs.Parse(argv); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return distiq.EngineStats{}, err
		}
		// The FlagSet has already written the message and usage.
		return distiq.EngineStats{}, fmt.Errorf("%w: %v", errBadFlags, err)
	}
	if err := cliutil.ValidateParallel(*parallel); err != nil {
		return distiq.EngineStats{}, err
	}
	effStore, err := cliutil.ResolveStoreFlags(*storeSpec, *cacheDir)
	if err != nil {
		return distiq.EngineStats{}, err
	}

	if *verifyPath != "" {
		return distiq.EngineStats{}, verifyManifest(*verifyPath, effStore, stderr)
	}

	spec, err := assembleSpec(*specPath, legacyFlags{
		scheme: *scheme, queues: *queues, entries: *entries, chains: *chains,
		intq: *intq, suite: *suite, bench: *benchCS, distr: *distr,
		n: *n, warmup: *warmup,
	})
	if err != nil {
		// Bad spec files and bad legacy grid flags are user input, like
		// the engine knobs above: exit 2 (and 400 in distiqd).
		return distiq.EngineStats{}, cliutil.BadInput(err)
	}

	if *dumpSpec {
		data, err := spec.JSON()
		if err != nil {
			return distiq.EngineStats{}, err
		}
		fmt.Fprintln(stdout, string(data))
		return distiq.EngineStats{}, nil
	}

	grid, err := spec.Expand()
	if err != nil {
		return distiq.EngineStats{}, cliutil.BadInput(err)
	}

	if *server != "" && len(serverList(*server)) == 0 {
		return distiq.EngineStats{}, cliutil.BadInput(fmt.Errorf("-server %q: no base URLs", *server))
	}

	// The sweep runs through the Client layer, local or remote by flag;
	// Ctrl-C cancels the context, which stops scheduling new points
	// (in-flight ones finish and persist) and exits 130.
	ctx, stop := cliutil.SignalContext()
	defer stop()
	var reporter *distiq.ConsoleReporter
	var cl distiq.Client
	var local *distiq.LocalClient
	var store distiq.ResultStore
	if *server != "" {
		if bases := serverList(*server); len(bases) > 1 {
			// A comma-separated -server list is a fleet: points shard
			// across the workers by job fingerprint, and a dead worker's
			// points requeue onto the survivors.
			cl = distiq.NewFleetClient(bases)
		} else {
			cl = distiq.NewRemoteClient(bases[0])
		}
	} else {
		opts := []distiq.ClientOption{distiq.WithParallel(*parallel)}
		if effStore != "" {
			// The effective -store/-cache-dir spec opens here and closes
			// after the sweep — for a batch: spec that final Close is what
			// group-commits the last queued results.
			store, err = distiq.OpenStore(effStore)
			if err != nil {
				return distiq.EngineStats{}, cliutil.BadInput(err)
			}
			opts = append(opts, distiq.WithStore(store))
		}
		if !*quiet {
			reporter = distiq.NewConsoleReporter(stderr)
			opts = append(opts, distiq.WithProgress(reporter.Report))
		}
		local = distiq.NewLocalClient(opts...)
		cl = local
	}
	stream := cl.Sweep(ctx, grid)
	res, err := stream.ResultSet()
	if reporter != nil {
		reporter.Finish()
	}
	if store != nil {
		if cerr := store.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	stats := runStats(local, stream)
	if err != nil {
		return stats, err
	}

	if *manifestOut != "" {
		if err := writeManifest(*manifestOut, stream); err != nil {
			return stats, err
		}
	}

	// Emit through the shared scenario emitter — the same code path the
	// distiqd HTTP service uses, so -spec output, -server output and
	// service bodies are byte-identical by construction.
	var buf bytes.Buffer
	if err := res.Emit(&buf, *format); err != nil {
		return stats, cliutil.BadInput(err)
	}
	if *outPath != "" {
		if err := os.WriteFile(*outPath, buf.Bytes(), 0o644); err != nil {
			return stats, err
		}
		return stats, nil
	}
	_, err = stdout.Write(buf.Bytes())
	return stats, err
}

// serverList splits a -server value on commas, dropping empty items (a
// trailing comma is tolerated).
func serverList(s string) []string {
	var bases []string
	for _, b := range strings.Split(s, ",") {
		if b = strings.TrimSpace(b); b != "" {
			bases = append(bases, b)
		}
	}
	return bases
}

// writeManifest stores a completed sweep's Merkle manifest as JSON. The
// stream must have been fully consumed; a sweep over a grid that is not
// content-addressable (never the case for spec-expanded grids) has no
// manifest to write.
func writeManifest(path string, stream *distiq.SweepStream) error {
	m := stream.Manifest()
	if m == nil {
		return fmt.Errorf("sweep produced no manifest")
	}
	data, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// verifyManifest re-derives a manifest's Merkle root from the bytes the
// selected store backend holds right now: every leaf's entry is
// re-fetched and re-hashed, so any post-sweep tampering — or a truncated
// or edited manifest — fails loudly (exit 1). storeSpec is the resolved
// -store/-cache-dir spec, so verification works against any backend.
func verifyManifest(path, storeSpec string, stderr io.Writer) error {
	if storeSpec == "" {
		return cliutil.BadInput(fmt.Errorf("-verify-manifest requires -store or -cache-dir (the store to verify against)"))
	}
	m, err := distiq.LoadManifest(path)
	if err != nil {
		return err
	}
	store, err := distiq.OpenStore(storeSpec)
	if err != nil {
		return cliutil.BadInput(err)
	}
	defer store.Close() //nolint:errcheck // read-only use
	if err := m.VerifyIn(store); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "iqsweep: manifest %s verified: %d points, root %s\n", path, m.Points, m.Root)
	return nil
}

// runStats reports how the sweep's jobs were resolved: the engine's own
// counters for a local run, or counters reconstructed from the stream's
// per-point sources for a remote one (the service resolved the jobs; the
// stream observed how).
func runStats(local *distiq.LocalClient, stream *distiq.SweepStream) distiq.EngineStats {
	if local != nil {
		return local.Stats()
	}
	return stream.Counts().Stats()
}

// legacyFlags carries the pre-spec grid flags; assembleSpec turns them
// into the equivalent scenario spec when no -spec file is given.
type legacyFlags struct {
	scheme, queues, entries, chains, intq, suite, bench string
	distr                                               bool
	n, warmup                                           uint64
}

func assembleSpec(specPath string, lf legacyFlags) (*distiq.ScenarioSpec, error) {
	if specPath != "" {
		return distiq.LoadScenarioSpec(specPath)
	}
	qs, err := ints(lf.queues)
	if err != nil {
		return nil, err
	}
	es, err := ints(lf.entries)
	if err != nil {
		return nil, err
	}
	chs, err := ints(lf.chains)
	if err != nil {
		return nil, err
	}
	spec := distiq.NewScenario("").WithScheme(distiq.SchemeAxis{
		Scheme: lf.scheme, IntQ: lf.intq,
		Queues: qs, Entries: es, Chains: chs, Distr: lf.distr,
	}).WithLengths(lf.warmup, lf.n)
	if lf.bench != "" {
		spec.WithBenchmarks(strings.Split(lf.bench, ",")...)
	} else if lf.suite != "" {
		spec.WithSuites(strings.ToLower(lf.suite))
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// ints parses a comma-separated integer list.
func ints(csv string) ([]int, error) {
	var out []int
	for _, s := range strings.Split(csv, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return nil, fmt.Errorf("bad integer list %q: %v", csv, err)
		}
		out = append(out, v)
	}
	return out, nil
}
