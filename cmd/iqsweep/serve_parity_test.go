package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"distiq/internal/serve"
)

// TestServeParityWithCLI is the acceptance gate for the distiqd service:
// the same 3-axis spec, round-tripped through the HTTP API against a
// store warmed by `iqsweep -spec`, must perform zero simulations and
// produce CSV/JSON/markdown bodies byte-identical to the CLI's output.
func TestServeParityWithCLI(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "grid.json")
	if err := os.WriteFile(specPath, []byte(testSpec), 0o644); err != nil {
		t.Fatal(err)
	}
	cacheDir := filepath.Join(dir, "cache")

	// CLI runs first (cold), filling the shared store; one run per format.
	cli := map[string]string{}
	for _, format := range []string{"csv", "json", "md"} {
		var out, errw bytes.Buffer
		if _, err := run([]string{"-spec", specPath, "-cache-dir", cacheDir,
			"-quiet", "-format", format}, &out, &errw); err != nil {
			t.Fatal(err)
		}
		cli[format] = out.String()
	}

	// The service shares the store: the sweep must resolve entirely from
	// disk, simulating nothing.
	ts := httptest.NewServer(serve.New(serve.Config{Parallel: 2, CacheDir: cacheDir}))
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	var st serve.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}

	deadline := time.Now().Add(30 * time.Second)
	for st.State != "done" && st.State != "failed" {
		if time.Now().After(deadline) {
			t.Fatalf("sweep stuck in %q", st.State)
		}
		time.Sleep(5 * time.Millisecond)
		r, err := http.Get(ts.URL + "/v1/sweeps/" + st.ID + "/status")
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
	}
	if st.State != "done" {
		t.Fatalf("sweep failed: %s", st.Error)
	}
	if st.Simulated != 0 {
		t.Fatalf("warm-store sweep simulated %d jobs, want 0", st.Simulated)
	}
	if st.DiskHits == 0 {
		t.Fatalf("warm-store sweep reported no disk hits: %+v", st)
	}

	for format, want := range cli {
		r, err := http.Get(ts.URL + "/v1/sweeps/" + st.ID + "?format=" + format)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("fetch %s: status %d, body %s", format, r.StatusCode, body)
		}
		if string(body) != want {
			t.Errorf("%s body differs from iqsweep -spec:\n--- cli ---\n%s--- http ---\n%s",
				format, want, body)
		}
	}

	// `iqsweep -server` drives the same service through the RemoteClient
	// streaming path: bytes must match the local runs, with zero
	// simulations (the store is warm) reported through the stream.
	for format, want := range cli {
		var out, errw bytes.Buffer
		stats, err := run([]string{"-spec", specPath, "-server", ts.URL,
			"-quiet", "-format", format}, &out, &errw)
		if err != nil {
			t.Fatalf("-server run (%s): %v", format, err)
		}
		if out.String() != want {
			t.Errorf("%s body differs between -server and local runs:\n--- local ---\n%s--- server ---\n%s",
				format, want, out.String())
		}
		if stats.Simulated != 0 || stats.Requested == 0 {
			t.Errorf("-server run (%s) stats = %+v, want warm stream counts", format, stats)
		}
	}
}
