package main

import (
	"reflect"
	"testing"

	"distiq"
)

func TestInts(t *testing.T) {
	got := ints("8, 12,16")
	if !reflect.DeepEqual(got, []int{8, 12, 16}) {
		t.Fatalf("ints = %v", got)
	}
}

func TestPickBenchmarks(t *testing.T) {
	if got := pickBenchmarks("", "swim,gzip"); !reflect.DeepEqual(got, []string{"swim", "gzip"}) {
		t.Fatalf("explicit list = %v", got)
	}
	if got := pickBenchmarks("fp", ""); len(got) != 14 {
		t.Fatalf("fp suite = %d entries", len(got))
	}
	if got := pickBenchmarks("int", ""); len(got) != 12 {
		t.Fatalf("int suite = %d entries", len(got))
	}
	if got := pickBenchmarks("", ""); len(got) != 26 {
		t.Fatalf("all = %d entries", len(got))
	}
}

func TestMakeConfig(t *testing.T) {
	cfg, err := makeConfig("MixBUFF", 8, 8, 10, 16, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.FP.Queues != 10 || cfg.FP.Entries != 16 || cfg.FP.Chains != 4 || !cfg.DistributedFU {
		t.Fatalf("config wrong: %+v", cfg)
	}
	if _, err := makeConfig("nope", 8, 8, 8, 8, 0, false); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	_ = distiq.SuiteFP
}
