package main

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"distiq"
	"distiq/internal/blobstore"
	"distiq/internal/cliutil"
)

func TestInts(t *testing.T) {
	got, err := ints("8, 12,16")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{8, 12, 16}) {
		t.Fatalf("ints = %v", got)
	}
	if _, err := ints("8,twelve"); err == nil {
		t.Fatal("bad list accepted")
	}
}

func TestAssembleSpecFromLegacyFlags(t *testing.T) {
	spec, err := assembleSpec("", legacyFlags{
		scheme: "MixBUFF", queues: "8,12", entries: "16", chains: "0,8",
		intq: "16x16", suite: "fp", n: 60_000, warmup: 10_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	grid, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// 2 queues x 1 entries x 2 chains x 14 FP benchmarks.
	if grid.Size() != 2*1*2*14 {
		t.Fatalf("grid size = %d", grid.Size())
	}
	if !reflect.DeepEqual(grid.Axes, []string{"scheme", "queues", "entries", "chains"}) {
		t.Fatalf("axes = %v", grid.Axes)
	}

	if _, err := assembleSpec("", legacyFlags{scheme: "nope", queues: "8",
		entries: "8", chains: "0", n: 1, warmup: 1}); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if _, err := assembleSpec("", legacyFlags{scheme: "MixBUFF", queues: "8",
		entries: "8", chains: "0", bench: "nonesuch", n: 1, warmup: 1}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out, errw bytes.Buffer
	if _, err := run([]string{"-parallel", "-1"}, &out, &errw); err == nil {
		t.Fatal("-parallel -1 accepted")
	}
	if _, err := run([]string{"-cache-dir", "/nonexistent-parent-dir/sub/cache"}, &out, &errw); err == nil {
		t.Fatal("bad -cache-dir parent accepted")
	}
	if _, err := run([]string{"-spec", "/no/such/spec.json"}, &out, &errw); err == nil {
		t.Fatal("missing spec accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schemes": [{"scheme": "MB_distr"}], "robz": [128]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := run([]string{"-spec", bad}, &out, &errw); err == nil ||
		!strings.Contains(err.Error(), "robz") {
		t.Fatalf("unknown axis not rejected: %v", err)
	}
}

// testSpec is a three-axis grid (scheme x ROB x perfect disambiguation)
// kept tiny so the end-to-end test stays fast.
const testSpec = `{
  "name": "e2e",
  "benchmarks": ["swim"],
  "schemes": [{"scheme": "MB_distr"}],
  "rob": [128, 256],
  "perfect_disambiguation": [false, true],
  "warmup": 1000,
  "instructions": 2000
}`

func TestRunSpecEndToEndWarmCache(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "grid.json")
	if err := os.WriteFile(specPath, []byte(testSpec), 0o644); err != nil {
		t.Fatal(err)
	}
	cacheDir := filepath.Join(dir, "cache")
	argv := []string{"-spec", specPath, "-cache-dir", cacheDir, "-quiet", "-parallel", "2"}

	var cold, errw bytes.Buffer
	coldStats, err := run(argv, &cold, &errw)
	if err != nil {
		t.Fatal(err)
	}
	if coldStats.Simulated != 4 {
		t.Fatalf("cold run simulated %d jobs, want 4", coldStats.Simulated)
	}
	head := strings.SplitN(cold.String(), "\n", 2)[0]
	want := "scheme,queues,entries,chains,rob,perfect_disambig,benchmark,ipc,iq_energy_pj,cycles"
	if head != want {
		t.Fatalf("csv header = %q, want %q", head, want)
	}
	if rows := strings.Count(cold.String(), "\n"); rows != 5 { // header + 4 points
		t.Fatalf("csv lines = %d, want 5", rows)
	}

	var warm bytes.Buffer
	warmStats, err := run(argv, &warm, &errw)
	if err != nil {
		t.Fatal(err)
	}
	if warmStats.Simulated != 0 {
		t.Fatalf("warm rerun simulated %d jobs, want 0", warmStats.Simulated)
	}
	if warmStats.DiskHits == 0 {
		t.Fatal("warm rerun reported no disk hits")
	}
	if !bytes.Equal(cold.Bytes(), warm.Bytes()) {
		t.Fatalf("warm CSV differs from cold CSV:\ncold:\n%s\nwarm:\n%s", cold.String(), warm.String())
	}
}

// TestManifestRoundTrip is the manifest integrity gate: a cold sweep
// writes a manifest, offline verification passes against the untouched
// store, and flipping one byte of one covered entry makes it fail.
func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "grid.json")
	if err := os.WriteFile(specPath, []byte(testSpec), 0o644); err != nil {
		t.Fatal(err)
	}
	cacheDir := filepath.Join(dir, "cache")
	manifestPath := filepath.Join(dir, "sweep-manifest.json")

	var out, errw bytes.Buffer
	if _, err := run([]string{"-spec", specPath, "-cache-dir", cacheDir, "-quiet",
		"-parallel", "2", "-manifest", manifestPath}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	m, err := distiq.LoadManifest(manifestPath)
	if err != nil {
		t.Fatalf("written manifest does not load: %v", err)
	}
	if m.Points != 4 || m.Name != "e2e" {
		t.Fatalf("manifest = %d points, name %q", m.Points, m.Name)
	}

	verify := []string{"-verify-manifest", manifestPath, "-cache-dir", cacheDir}
	if _, err := run(verify, &out, &errw); err != nil {
		t.Fatalf("verify on a pristine store: %v", err)
	}
	if !strings.Contains(errw.String(), "verified") {
		t.Fatalf("no verification report: %q", errw.String())
	}

	// Without a store there is nothing to verify against: bad input.
	if _, err := run([]string{"-verify-manifest", manifestPath}, &out, &errw); err == nil {
		t.Fatal("-verify-manifest without -cache-dir accepted")
	} else if cliutil.ExitCode(err) != 2 {
		t.Fatalf("exit code %d, want 2 (%v)", cliutil.ExitCode(err), err)
	}

	// Flip one byte of one covered entry: verification must fail with a
	// plain (exit 1) integrity error naming the point.
	victim := filepath.Join(cacheDir, m.Leaves[2].Fingerprint+".json")
	raw, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 1
	if err := os.WriteFile(victim, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = run(verify, &out, &errw)
	if err == nil {
		t.Fatal("verify passed over a tampered store")
	}
	if cliutil.ExitCode(err) != 1 {
		t.Fatalf("tamper exit code %d, want 1 (%v)", cliutil.ExitCode(err), err)
	}
	if !strings.Contains(err.Error(), "point 2") {
		t.Fatalf("tamper error does not name the point: %v", err)
	}
}

func TestRunDumpSpecRoundTrips(t *testing.T) {
	var out, errw bytes.Buffer
	if _, err := run([]string{"-dump-spec", "-bench", "swim", "-scheme", "IssueFIFO",
		"-queues", "8", "-entries", "8", "-chains", "0"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	spec, err := distiq.ParseScenarioSpec(out.Bytes())
	if err != nil {
		t.Fatalf("dumped spec does not parse back: %v\n%s", err, out.String())
	}
	if len(spec.Schemes) != 1 || spec.Schemes[0].Scheme != "IssueFIFO" {
		t.Fatalf("round-tripped spec = %+v", spec)
	}
}

// TestDumpSpecByteIdenticalRoundTrip pins the -dump-spec contract:
// whatever legacy flag combination generated the spec, parsing the
// dumped JSON back through the strict parser and re-rendering it must
// reproduce the dumped bytes exactly. A drift here would mean the CLI
// emits fields the parser normalizes away (or vice versa), so dumped
// specs would stop being canonical.
func TestDumpSpecByteIdenticalRoundTrip(t *testing.T) {
	combos := [][]string{
		{"-dump-spec", "-scheme", "MixBUFF", "-queues", "4,8", "-entries", "8,16",
			"-chains", "0,8", "-suite", "fp", "-distr"},
		{"-dump-spec", "-scheme", "IssueFIFO", "-queues", "8", "-entries", "8",
			"-chains", "0", "-bench", "swim,gzip"},
		{"-dump-spec", "-scheme", "LatFIFO", "-queues", "2,4,8", "-entries", "32",
			"-chains", "0", "-intq", "8x8", "-n", "30000", "-warmup", "5000"},
	}
	for _, argv := range combos {
		var out, errw bytes.Buffer
		if _, err := run(argv, &out, &errw); err != nil {
			t.Fatalf("%v: %v", argv, err)
		}
		spec, err := distiq.ParseScenarioSpec(out.Bytes())
		if err != nil {
			t.Fatalf("%v: dumped spec does not parse back: %v\n%s", argv, err, out.String())
		}
		again, err := spec.JSON()
		if err != nil {
			t.Fatalf("%v: %v", argv, err)
		}
		// -dump-spec prints the JSON plus a trailing newline.
		if want := append(again, '\n'); !bytes.Equal(out.Bytes(), want) {
			t.Fatalf("%v: round trip is not byte-identical:\ndumped:\n%s\nre-rendered:\n%s",
				argv, out.String(), want)
		}
	}
}

func TestRunOtherFormats(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "grid.json")
	spec := `{"benchmarks": ["swim"], "schemes": [{"scheme": "IQ_64_64"}],
		"warmup": 500, "instructions": 1000}`
	if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	var md, js, errw bytes.Buffer
	if _, err := run([]string{"-spec", specPath, "-quiet", "-format", "md"}, &md, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(md.String(), "| scheme |") {
		t.Fatalf("markdown output = %q", md.String())
	}
	if _, err := run([]string{"-spec", specPath, "-quiet", "-format", "json"}, &js, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), `"benchmark": "swim"`) {
		t.Fatalf("json output = %q", js.String())
	}
	var bad bytes.Buffer
	if _, err := run([]string{"-spec", specPath, "-quiet", "-format", "yaml"}, &bad, &errw); err == nil {
		t.Fatal("unknown format accepted")
	}
}

// TestRunErrorsAreBadInput: spec and flag mistakes classify as user
// input (exit 2 via cliutil.ExitCode), matching the service's 400s.
func TestRunErrorsAreBadInput(t *testing.T) {
	var out, errw bytes.Buffer
	for name, argv := range map[string][]string{
		"bad parallel":   {"-parallel", "-1"},
		"bad queues":     {"-queues", "8,x"},
		"unknown scheme": {"-scheme", "nope"},
		"bad format": {"-bench", "swim", "-queues", "8", "-entries", "8",
			"-warmup", "100", "-n", "200", "-quiet", "-format", "yaml"},
	} {
		_, err := run(argv, &out, &errw)
		if err == nil {
			t.Errorf("%s accepted", name)
			continue
		}
		if cliutil.ExitCode(err) != 2 {
			t.Errorf("%s: exit code %d, want 2 (%v)", name, cliutil.ExitCode(err), err)
		}
	}
}

// TestRunStoreBackendsEndToEnd sweeps cold then warm through the
// non-filesystem -store backends: the HTTP blob service holds the
// results between invocations (zero simulations warm, identical bytes),
// batch: wrapping changes nothing observable, and -verify-manifest
// works against the remote store.
func TestRunStoreBackendsEndToEnd(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "grid.json")
	if err := os.WriteFile(specPath, []byte(testSpec), 0o644); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(blobstore.NewServer())
	defer ts.Close()
	manifestPath := filepath.Join(dir, "sweep-manifest.json")

	// Cold pass writes through a batched tier ending in the blob server.
	coldSpec := "batch:tier:mem," + ts.URL
	var cold, errw bytes.Buffer
	coldStats, err := run([]string{"-spec", specPath, "-store", coldSpec, "-quiet",
		"-parallel", "2", "-manifest", manifestPath}, &cold, &errw)
	if err != nil {
		t.Fatal(err)
	}
	if coldStats.Simulated != 4 {
		t.Fatalf("cold run simulated %d jobs, want 4", coldStats.Simulated)
	}

	// Warm pass reads from the blob server alone: everything the cold
	// pass queued must have been flushed there by store Close.
	var warm bytes.Buffer
	warmStats, err := run([]string{"-spec", specPath, "-store", ts.URL, "-quiet",
		"-parallel", "2"}, &warm, &errw)
	if err != nil {
		t.Fatal(err)
	}
	if warmStats.Simulated != 0 {
		t.Fatalf("warm rerun over the blob store simulated %d jobs, want 0", warmStats.Simulated)
	}
	if warmStats.DiskHits != 4 {
		t.Fatalf("warm rerun store hits = %d, want 4", warmStats.DiskHits)
	}
	if !bytes.Equal(cold.Bytes(), warm.Bytes()) {
		t.Fatalf("warm CSV differs from cold CSV:\ncold:\n%s\nwarm:\n%s", cold.String(), warm.String())
	}

	// The manifest written during the cold pass verifies against the
	// remote store's bytes.
	errw.Reset()
	if _, err := run([]string{"-verify-manifest", manifestPath, "-store", ts.URL},
		&warm, &errw); err != nil {
		t.Fatalf("verify against the blob store: %v", err)
	}
	if !strings.Contains(errw.String(), "verified") {
		t.Fatalf("no verification report: %q", errw.String())
	}

	// -store and -cache-dir together are ambiguous: bad input, exit 2.
	if _, err := run([]string{"-spec", specPath, "-store", "mem", "-cache-dir", dir,
		"-quiet"}, &warm, &errw); err == nil || cliutil.ExitCode(err) != 2 {
		t.Fatalf("-store with -cache-dir not rejected as bad input: %v", err)
	}
}
