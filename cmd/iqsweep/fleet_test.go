package main

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"distiq/internal/blobstore"
	"distiq/internal/engine"
	"distiq/internal/serve"
)

// TestFleetServerFlag is the CLI acceptance gate for fleet-sharded
// sweeps: `iqsweep -server URL1,URL2,URL3` shards the grid across three
// in-process distiqd workers rendezvousing on one shared HTTP blob
// store, and the output bytes must be identical to a local run. A
// second (warm) fleet run over fresh workers and the same blob store
// must simulate nothing.
func TestFleetServerFlag(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "grid.json")
	if err := os.WriteFile(specPath, []byte(testSpec), 0o644); err != nil {
		t.Fatal(err)
	}

	// Local reference bytes.
	var local, errw bytes.Buffer
	if _, err := run([]string{"-spec", specPath, "-quiet", "-format", "csv"}, &local, &errw); err != nil {
		t.Fatal(err)
	}

	blob := httptest.NewServer(blobstore.NewServer())
	defer blob.Close()
	startFleet := func() string {
		bases := make([]string, 3)
		for w := range bases {
			ts := httptest.NewServer(serve.New(serve.Config{
				Parallel: 2,
				Store:    engine.NewHTTPStore(blob.URL, blob.Client()),
			}))
			t.Cleanup(ts.Close)
			bases[w] = ts.URL
		}
		return strings.Join(bases, ",")
	}

	var cold bytes.Buffer
	coldStats, err := run([]string{"-spec", specPath, "-server", startFleet(), "-format", "csv"}, &cold, &errw)
	if err != nil {
		t.Fatal(err)
	}
	if cold.String() != local.String() {
		t.Fatalf("fleet CSV differs from local:\n--- fleet ---\n%s--- local ---\n%s", cold.String(), local.String())
	}
	if coldStats.Simulated == 0 {
		t.Fatalf("cold fleet run simulated nothing: %+v", coldStats)
	}

	// Entirely fresh workers, same blob store: warm, zero simulations.
	var warm bytes.Buffer
	warmStats, err := run([]string{"-spec", specPath, "-server", startFleet(), "-format", "csv"}, &warm, &errw)
	if err != nil {
		t.Fatal(err)
	}
	if warmStats.Simulated != 0 {
		t.Fatalf("warm fleet run simulated %d jobs, want 0 (%+v)", warmStats.Simulated, warmStats)
	}
	if warm.String() != local.String() {
		t.Fatal("warm fleet run emitted different bytes than local")
	}
}

// TestFleetServerFlagRejectsEmptyList: a -server value with no usable
// URLs is user input error (exit taxonomy 2), not a crash.
func TestFleetServerFlagRejectsEmptyList(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "grid.json")
	if err := os.WriteFile(specPath, []byte(testSpec), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errw bytes.Buffer
	if _, err := run([]string{"-spec", specPath, "-server", " , "}, &out, &errw); err == nil {
		t.Fatal("run with an empty -server list succeeded")
	}
}
