// Command iqstudy runs comparative studies — ablations, seed-replicated
// statistics and adaptive energy–IPC Pareto frontier searches — through
// the same Client layer iqsweep uses. A study is a strict-JSON spec
// (-spec) in one of three modes:
//
//   - "ablation": a baseline configuration plus named variants, each a
//     set of feature toggles over the baseline; the output is a
//     deterministic variant × metric table with IPC and energy deltas.
//   - "replication": the same variants fanned across RNG seeds (explicit
//     "seeds" or a "replicates" count); the output reports mean, sample
//     stddev and 95% confidence intervals per variant × benchmark.
//   - "frontier": an adaptive search over a discrete configuration
//     "space" (queues × entries × chains × rob) for the energy-vs-IPC
//     Pareto frontier: a coarse grid seeds the search, then each round
//     proposes neighbors of the current non-dominated set until the
//     evaluation budget is exhausted or a round improves nothing.
//
// Every variant and candidate resolves through the content-addressed
// engine, so a warm rerun performs zero simulations and emits identical
// bytes, and a frontier re-proposing a visited point answers from cache.
// With -server the study drives one or more remote distiqd workers via
// their sweep endpoints; the table is byte-identical either way.
//
// Usage:
//
//	iqstudy -spec study.json -cache-dir /tmp/distiq-cache
//	iqstudy -spec study.json -format md -o study.md
//	iqstudy -spec study.json -server http://localhost:8090
//	iqstudy -spec study.json -server http://w1:8090,http://w2:8090
//
// An ablation spec:
//
//	{
//	  "name": "scheme-ablation",
//	  "mode": "ablation",
//	  "suites": ["fp"],
//	  "variants": [
//	    {"name": "mb-distr", "scheme": "MB_distr"},
//	    {"name": "small-rob", "rob": 128}
//	  ]
//	}
//
// A frontier spec:
//
//	{
//	  "name": "latfifo-frontier",
//	  "mode": "frontier",
//	  "benchmarks": ["swim"],
//	  "space": {"scheme": "LatFIFO", "queues": [2,4,8], "entries": [8,16,32]},
//	  "budget": 16,
//	  "batch": 4
//	}
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"distiq"
	"distiq/internal/cliutil"
)

// errBadFlags marks a flag-parse failure the FlagSet already reported
// on stderr, so main does not print it a second time.
var errBadFlags = errors.New("bad flags")

func main() {
	stats, err := run(os.Args[1:], os.Stdout, os.Stderr)
	switch {
	case errors.Is(err, flag.ErrHelp):
		os.Exit(0)
	case errors.Is(err, errBadFlags):
		os.Exit(2)
	case err != nil:
		fmt.Fprintf(os.Stderr, "iqstudy: %v\n", err)
		// Bad user input (specs, unknown formats) exits 2 like a flag
		// error; system failures exit 1.
		os.Exit(cliutil.ExitCode(err))
	}
	if stats.Requested > 0 {
		fmt.Fprintf(os.Stderr, "iqstudy: %d simulated, %d memory hits, %d disk hits, %d deduplicated\n",
			stats.Simulated, stats.MemoryHits, stats.DiskHits, stats.Shared)
	}
}

// run parses argv, loads the study spec, executes it through the Client
// layer and writes the formatted table. It returns the resolution
// counters so tests can assert warm-cache behaviour.
func run(argv []string, stdout, stderr io.Writer) (distiq.EngineStats, error) {
	fs := flag.NewFlagSet("iqstudy", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		specPath = fs.String("spec", "", "JSON study spec file (required)")
		format   = fs.String("format", "csv", "output format: csv, json or md")
		outPath  = fs.String("o", "", "write output to this file instead of stdout")

		parallel  = fs.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS, 1 = serial; local runs)")
		cacheDir  = fs.String("cache-dir", "", "persistent result store directory (alias for -store fs:DIR; local runs)")
		storeSpec = fs.String("store", "", "result-store backend: fs:DIR, mem, http(s)://URL, tier:SPEC,..., batch:SPEC (local runs)")
		server    = fs.String("server", "", "run the study's points on distiqd workers instead of in-process: one base URL, or a comma-separated list sharded by job fingerprint")
		quiet     = fs.Bool("quiet", false, "suppress the progress reporter on stderr")
	)
	if err := fs.Parse(argv); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return distiq.EngineStats{}, err
		}
		// The FlagSet has already written the message and usage.
		return distiq.EngineStats{}, fmt.Errorf("%w: %v", errBadFlags, err)
	}
	if err := cliutil.ValidateParallel(*parallel); err != nil {
		return distiq.EngineStats{}, err
	}
	effStore, err := cliutil.ResolveStoreFlags(*storeSpec, *cacheDir)
	if err != nil {
		return distiq.EngineStats{}, err
	}
	if *specPath == "" {
		return distiq.EngineStats{}, cliutil.BadInput(fmt.Errorf("-spec is required"))
	}
	spec, err := distiq.LoadStudySpec(*specPath)
	if err != nil {
		return distiq.EngineStats{}, cliutil.BadInput(err)
	}
	if *server != "" && len(serverList(*server)) == 0 {
		return distiq.EngineStats{}, cliutil.BadInput(fmt.Errorf("-server %q: no base URLs", *server))
	}

	// The study runs through the Client layer, local or remote by flag;
	// Ctrl-C cancels the context, which stops scheduling new points
	// (in-flight ones finish and persist) and exits 130.
	ctx, stop := cliutil.SignalContext()
	defer stop()
	var reporter *distiq.ConsoleReporter
	var cl distiq.Client
	var local *distiq.LocalClient
	var store distiq.ResultStore
	if *server != "" {
		if bases := serverList(*server); len(bases) > 1 {
			cl = distiq.NewFleetClient(bases)
		} else {
			cl = distiq.NewRemoteClient(bases[0])
		}
	} else {
		opts := []distiq.ClientOption{distiq.WithParallel(*parallel)}
		if effStore != "" {
			store, err = distiq.OpenStore(effStore)
			if err != nil {
				return distiq.EngineStats{}, cliutil.BadInput(err)
			}
			opts = append(opts, distiq.WithStore(store))
		}
		if !*quiet {
			reporter = distiq.NewConsoleReporter(stderr)
			opts = append(opts, distiq.WithProgress(reporter.Report))
		}
		local = distiq.NewLocalClient(opts...)
		cl = local
	}
	res, err := distiq.RunStudy(ctx, cl, spec)
	if reporter != nil {
		reporter.Finish()
	}
	if store != nil {
		if cerr := store.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	stats := runStats(local, res)
	if err != nil {
		return stats, err
	}

	// Emit through the shared study emitter — the same code path the
	// distiqd /v1/studies service uses, so CLI output, -server output
	// and service bodies are byte-identical by construction.
	var buf bytes.Buffer
	if err := res.Emit(&buf, *format); err != nil {
		return stats, cliutil.BadInput(err)
	}
	if *outPath != "" {
		if err := os.WriteFile(*outPath, buf.Bytes(), 0o644); err != nil {
			return stats, err
		}
		return stats, nil
	}
	_, err = stdout.Write(buf.Bytes())
	return stats, err
}

// serverList splits a -server value on commas, dropping empty items (a
// trailing comma is tolerated).
func serverList(s string) []string {
	var bases []string
	for _, b := range strings.Split(s, ",") {
		if b = strings.TrimSpace(b); b != "" {
			bases = append(bases, b)
		}
	}
	return bases
}

// runStats reports how the study's points were resolved: the engine's
// own counters for a local run, or counters reconstructed from the
// study's per-point sources for a remote one.
func runStats(local *distiq.LocalClient, res *distiq.StudyResult) distiq.EngineStats {
	if local != nil {
		return local.Stats()
	}
	if res == nil {
		return distiq.EngineStats{}
	}
	return res.Counts.Stats()
}
