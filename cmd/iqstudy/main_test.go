package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"distiq/internal/cliutil"
	"distiq/internal/serve"
)

// ablationSpec is a two-variant ablation kept tiny so the end-to-end
// tests stay fast.
const ablationSpec = `{
  "name": "cli-ablation",
  "mode": "ablation",
  "benchmarks": ["swim"],
  "variants": [
    {"name": "small-rob", "rob": 128},
    {"name": "mb-distr", "scheme": "MB_distr"}
  ],
  "warmup": 1000,
  "instructions": 2000
}`

func writeSpec(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "study.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunRejectsBadInput(t *testing.T) {
	var out, errw bytes.Buffer
	if _, err := run([]string{"-parallel", "-1", "-spec", "x.json"}, &out, &errw); err == nil {
		t.Fatal("-parallel -1 accepted")
	}
	if _, err := run([]string{}, &out, &errw); err == nil {
		t.Fatal("missing -spec accepted")
	} else if cliutil.ExitCode(err) != 2 {
		t.Fatalf("missing -spec exit code %d, want 2 (%v)", cliutil.ExitCode(err), err)
	}
	if _, err := run([]string{"-spec", "/no/such/study.json"}, &out, &errw); err == nil {
		t.Fatal("missing spec file accepted")
	}

	bad := writeSpec(t, `{"mode": "ablation", "variants": [{"name": "v", "rob": 128}], "robz": 1}`)
	if _, err := run([]string{"-spec", bad}, &out, &errw); err == nil ||
		!strings.Contains(err.Error(), "robz") {
		t.Fatalf("unknown field not rejected: %v", err)
	}

	good := writeSpec(t, ablationSpec)
	if _, err := run([]string{"-spec", good, "-format", "xml"}, &out, &errw); err == nil {
		t.Fatal("unknown format accepted")
	} else if cliutil.ExitCode(err) != 2 {
		t.Fatalf("unknown format exit code %d, want 2 (%v)", cliutil.ExitCode(err), err)
	}
	if _, err := run([]string{"-spec", good, "-server", ", ,"}, &out, &errw); err == nil {
		t.Fatal("empty -server list accepted")
	}
}

func TestRunAblationEndToEndWarmCache(t *testing.T) {
	specPath := writeSpec(t, ablationSpec)
	cacheDir := filepath.Join(t.TempDir(), "cache")
	argv := []string{"-spec", specPath, "-cache-dir", cacheDir, "-quiet", "-parallel", "2"}

	var cold, errw bytes.Buffer
	coldStats, err := run(argv, &cold, &errw)
	if err != nil {
		t.Fatal(err)
	}
	// baseline + 2 variants x 1 benchmark.
	if coldStats.Simulated != 3 {
		t.Fatalf("cold run simulated %d jobs, want 3", coldStats.Simulated)
	}
	head := strings.SplitN(cold.String(), "\n", 2)[0]
	want := "variant,config,ipc_hmean,iq_energy_pj,d_ipc_pct,d_energy_pct"
	if head != want {
		t.Fatalf("csv header = %q, want %q", head, want)
	}
	if rows := strings.Count(cold.String(), "\n"); rows != 4 { // header + 3 variants
		t.Fatalf("csv lines = %d, want 4", rows)
	}

	var warm bytes.Buffer
	warmStats, err := run(argv, &warm, &errw)
	if err != nil {
		t.Fatal(err)
	}
	if warmStats.Simulated != 0 {
		t.Fatalf("warm rerun simulated %d jobs, want 0", warmStats.Simulated)
	}
	if !bytes.Equal(cold.Bytes(), warm.Bytes()) {
		t.Fatalf("warm CSV differs from cold CSV:\ncold:\n%s\nwarm:\n%s", cold.String(), warm.String())
	}
}

func TestRunReplicationMode(t *testing.T) {
	specPath := writeSpec(t, `{
	  "name": "cli-replication",
	  "mode": "replication",
	  "benchmarks": ["swim"],
	  "replicates": 3,
	  "warmup": 1000,
	  "instructions": 2000
	}`)
	var out, errw bytes.Buffer
	stats, err := run([]string{"-spec", specPath, "-quiet"}, &out, &errw)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Simulated != 3 { // baseline x 3 seeds x 1 benchmark
		t.Fatalf("simulated %d jobs, want 3", stats.Simulated)
	}
	head := strings.SplitN(out.String(), "\n", 2)[0]
	want := "variant,config,benchmark,n,ipc_mean,ipc_sd,ipc_ci95,energy_mean,energy_sd,energy_ci95"
	if head != want {
		t.Fatalf("csv header = %q, want %q", head, want)
	}
	if !strings.Contains(out.String(), ",3,") {
		t.Fatalf("no n=3 column in:\n%s", out.String())
	}
}

func TestRunFrontierModeWritesFile(t *testing.T) {
	specPath := writeSpec(t, `{
	  "name": "cli-frontier",
	  "mode": "frontier",
	  "benchmarks": ["swim"],
	  "space": {"scheme": "LatFIFO", "queues": [2, 4], "entries": [8, 16]},
	  "budget": 4,
	  "batch": 2,
	  "warmup": 1000,
	  "instructions": 2000
	}`)
	outPath := filepath.Join(t.TempDir(), "frontier.md")
	var out, errw bytes.Buffer
	stats, err := run([]string{"-spec", specPath, "-quiet", "-format", "md", "-o", outPath}, &out, &errw)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("-o still wrote to stdout: %q", out.String())
	}
	if stats.Simulated == 0 {
		t.Fatal("frontier simulated nothing")
	}
	body, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "Search trajectory:") {
		t.Fatalf("frontier output has no trajectory:\n%s", body)
	}
}

// TestRunServerParity is the remote acceptance gate: the same study,
// run against a distiqd worker's sweep endpoints via -server, must
// produce bytes identical to the local run for every format.
func TestRunServerParity(t *testing.T) {
	specPath := writeSpec(t, ablationSpec)
	cacheDir := filepath.Join(t.TempDir(), "cache")

	local := map[string]string{}
	for _, format := range []string{"csv", "json", "md"} {
		var out, errw bytes.Buffer
		if _, err := run([]string{"-spec", specPath, "-cache-dir", cacheDir,
			"-quiet", "-format", format}, &out, &errw); err != nil {
			t.Fatal(err)
		}
		local[format] = out.String()
	}

	ts := httptest.NewServer(serve.New(serve.Config{Parallel: 2, CacheDir: cacheDir}))
	defer ts.Close()
	for _, format := range []string{"csv", "json", "md"} {
		var out, errw bytes.Buffer
		stats, err := run([]string{"-spec", specPath, "-server", ts.URL,
			"-quiet", "-format", format}, &out, &errw)
		if err != nil {
			t.Fatal(err)
		}
		// The worker shares the CLI-warmed store: nothing re-simulates.
		if stats.Simulated != 0 {
			t.Fatalf("%s: remote run simulated %d jobs, want 0", format, stats.Simulated)
		}
		if out.String() != local[format] {
			t.Fatalf("%s: remote output differs from local:\nlocal:\n%s\nremote:\n%s",
				format, local[format], out.String())
		}
	}
	if js := local["json"]; !json.Valid([]byte(js)) {
		t.Fatalf("json output invalid:\n%s", js)
	}
}
