// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each BenchmarkFigN runs the corresponding experiment and
// reports the figure's headline quantity through b.ReportMetric, so
//
//	go test -bench=Fig -benchtime=1x
//
// reproduces the whole evaluation. A package-level session memoizes
// simulations across benchmarks (the figures share their baselines), and
// the per-run instruction counts are kept small; use cmd/iqfig for
// longer, tighter runs.
package distiq_test

import (
	"sync"
	"testing"

	"distiq"
	"distiq/internal/metrics"
	"distiq/internal/pipeline"
	"distiq/internal/trace"
)

// newGenerator builds a workload generator for direct pipeline runs.
func newGenerator(b *testing.B, bench string) pipeline.Fetcher {
	b.Helper()
	return trace.NewGenerator(trace.MustByName(bench))
}

var (
	benchSession     *distiq.Session
	benchSessionOnce sync.Once
)

func session() *distiq.Session {
	benchSessionOnce.Do(func() {
		benchSession = distiq.NewSession(distiq.Options{Warmup: 5_000, Instructions: 25_000})
	})
	return benchSession
}

// figureBench runs figure n once per iteration and reports metric from the
// table through report.
func figureBench(b *testing.B, n int, report func(distiq.Table) (string, float64)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tab, err := distiq.Figure(n, session())
		if err != nil {
			b.Fatal(err)
		}
		name, v := report(tab)
		b.ReportMetric(v, name)
	}
}

// lastRowValue returns the final row's (HMEAN/HARMEAN) value at column c.
func lastRowValue(tab distiq.Table, c int) float64 {
	return tab.Rows[len(tab.Rows)-1].Values[c]
}

// BenchmarkTable1Processor prints nothing but verifies the Table 1
// configuration builds and reports the baseline SPECFP harmonic-mean IPC.
func BenchmarkTable1Processor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runs, err := session().SuiteRuns(distiq.SuiteFP, distiq.Baseline64())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(metrics.HarmonicMeanIPC(runs), "hm-ipc")
	}
}

// BenchmarkFig2IssueFIFOInt: IPC loss of IssueFIFO on SPECINT across the
// queue sweep; reports the harmonic-mean loss of the 8x8 configuration.
func BenchmarkFig2IssueFIFOInt(b *testing.B) {
	figureBench(b, 2, func(t distiq.Table) (string, float64) {
		return "loss%-8x8", lastRowValue(t, 0)
	})
}

// BenchmarkFig3IssueFIFOFP: IPC loss of IssueFIFO on SPECFP; reports the
// 8x16 harmonic-mean loss (the paper quotes 24.8%).
func BenchmarkFig3IssueFIFOFP(b *testing.B) {
	figureBench(b, 3, func(t distiq.Table) (string, float64) {
		return "loss%-8x16", lastRowValue(t, 1)
	})
}

// BenchmarkFig4LatFIFOFP: IPC loss of LatFIFO on SPECFP; reports the 8x16
// harmonic-mean loss (paper: 15.2%).
func BenchmarkFig4LatFIFOFP(b *testing.B) {
	figureBench(b, 4, func(t distiq.Table) (string, float64) {
		return "loss%-8x16", lastRowValue(t, 1)
	})
}

// BenchmarkFig6MixBUFFFP: IPC loss of MixBUFF on SPECFP; reports the 8x16
// harmonic-mean loss (paper: 5.2%).
func BenchmarkFig6MixBUFFFP(b *testing.B) {
	figureBench(b, 6, func(t distiq.Table) (string, float64) {
		return "loss%-8x16", lastRowValue(t, 1)
	})
}

// BenchmarkFig7IPCInt: absolute IPC of IQ_64_64 / IF_distr / MB_distr on
// SPECINT; reports the MB_distr harmonic mean.
func BenchmarkFig7IPCInt(b *testing.B) {
	figureBench(b, 7, func(t distiq.Table) (string, float64) {
		return "hm-ipc-MB", lastRowValue(t, 2)
	})
}

// BenchmarkFig8IPCFP: the same on SPECFP (the paper's headline: MB_distr
// loses 7.6% where IF_distr loses 26%).
func BenchmarkFig8IPCFP(b *testing.B) {
	figureBench(b, 8, func(t distiq.Table) (string, float64) {
		return "hm-ipc-MB", lastRowValue(t, 2)
	})
}

// BenchmarkFig9BreakdownBaseline reports the wakeup share of the baseline
// issue-queue energy (SPECFP column).
func BenchmarkFig9BreakdownBaseline(b *testing.B) {
	figureBench(b, 9, func(t distiq.Table) (string, float64) {
		for _, r := range t.Rows {
			if r.Label == "wakeup" {
				return "wakeup%", r.Values[1]
			}
		}
		b.Fatal("no wakeup row")
		return "", 0
	})
}

// BenchmarkFig10BreakdownIFDistr reports the fifo share of IF_distr energy.
func BenchmarkFig10BreakdownIFDistr(b *testing.B) {
	figureBench(b, 10, func(t distiq.Table) (string, float64) {
		for _, r := range t.Rows {
			if r.Label == "fifo" {
				return "fifo%", r.Values[1]
			}
		}
		b.Fatal("no fifo row")
		return "", 0
	})
}

// BenchmarkFig11BreakdownMBDistr reports the chains share of MB_distr
// energy (the paper's new component).
func BenchmarkFig11BreakdownMBDistr(b *testing.B) {
	figureBench(b, 11, func(t distiq.Table) (string, float64) {
		for _, r := range t.Rows {
			if r.Label == "chains" {
				return "chains%", r.Values[1]
			}
		}
		b.Fatal("no chains row")
		return "", 0
	})
}

// BenchmarkFig12Power reports MB_distr normalized issue-queue power (FP).
func BenchmarkFig12Power(b *testing.B) {
	figureBench(b, 12, func(t distiq.Table) (string, float64) {
		return "norm-power-MB", t.Rows[2].Values[1]
	})
}

// BenchmarkFig13Energy reports MB_distr normalized issue-queue energy (FP).
func BenchmarkFig13Energy(b *testing.B) {
	figureBench(b, 13, func(t distiq.Table) (string, float64) {
		return "norm-energy-MB", t.Rows[2].Values[1]
	})
}

// BenchmarkFig14EnergyDelay reports MB_distr normalized processor ED (FP);
// the paper reports 0.95 versus the baseline and an 18% win over IF_distr.
func BenchmarkFig14EnergyDelay(b *testing.B) {
	figureBench(b, 14, func(t distiq.Table) (string, float64) {
		return "norm-ED-MB", t.Rows[2].Values[1]
	})
}

// BenchmarkFig15EnergyDelay2 reports MB_distr normalized ED² (FP); the
// paper reports parity with the baseline and a 35% win over IF_distr.
func BenchmarkFig15EnergyDelay2(b *testing.B) {
	figureBench(b, 15, func(t distiq.Table) (string, float64) {
		return "norm-ED2-MB", t.Rows[2].Values[1]
	})
}

// ---------------------------------------------------------------------
// Engine parallelism benches: the same figure regenerated serially and
// across worker pools. Each iteration builds a fresh session so every
// simulation really runs (no cross-iteration memoization); compare
//
//	go test -bench='Fig8(Serial|Parallel)' -benchtime=3x
//
// wall-clock times to see the multi-core speedup. Output tables are
// byte-identical at any parallelism (TestParallelFigureByteIdentical).
// ---------------------------------------------------------------------

func benchFigureParallel(b *testing.B, parallel int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		s := distiq.NewSessionWith(distiq.SessionConfig{
			Opt:      distiq.Options{Warmup: 2_000, Instructions: 10_000},
			Parallel: parallel,
		})
		if _, err := distiq.Figure(8, s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8Serial(b *testing.B)    { benchFigureParallel(b, 1) }
func BenchmarkFig8Parallel4(b *testing.B) { benchFigureParallel(b, 4) }
func BenchmarkFig8Parallel8(b *testing.B) { benchFigureParallel(b, 8) }

// ---------------------------------------------------------------------
// Ablation benches for the design decisions called out in DESIGN.md.
// ---------------------------------------------------------------------

func ablationIPC(b *testing.B, bench string, cfg distiq.Config) float64 {
	b.Helper()
	res, err := distiq.Run(bench, cfg, distiq.Options{Warmup: 5_000, Instructions: 25_000})
	if err != nil {
		b.Fatal(err)
	}
	return res.IPC()
}

// BenchmarkAblationChainsPerQueue sweeps MixBUFF chains per queue on swim;
// the paper fixes 8 chains for MB_distr.
func BenchmarkAblationChainsPerQueue(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, chains := range []int{2, 4, 8, 16} {
			cfg := distiq.MixBUFFCfg(8, 8, 8, 16, chains)
			cfg.Name = cfg.Name + "_c"
			b.ReportMetric(ablationIPC(b, "swim", cfg), "ipc-chains")
			_ = chains
		}
	}
}

// BenchmarkAblationDistributedFU compares MixBUFF with global versus
// distributed functional units (the crossbar-complexity trade).
func BenchmarkAblationDistributedFU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		global := distiq.MixBUFFCfg(8, 8, 8, 16, 8)
		ipcGlobal := ablationIPC(b, "galgel", global)
		ipcDistr := ablationIPC(b, "galgel", distiq.MBDistr())
		b.ReportMetric(100*(1-ipcDistr/ipcGlobal), "distr-loss%")
	}
}

// BenchmarkAblationUnboundedChains compares the paper's 8-chain bound with
// unbounded chains (section 3.2 is evaluated unbounded, MB_distr bounded).
func BenchmarkAblationUnboundedChains(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bounded := ablationIPC(b, "mgrid", distiq.MixBUFFCfg(8, 8, 8, 16, 8))
		unbounded := ablationIPC(b, "mgrid", distiq.MixBUFFCfg(8, 8, 8, 16, 0))
		b.ReportMetric(100*(1-bounded/unbounded), "bound-loss%")
	}
}

// BenchmarkAblationMapClearing quantifies the paper's claim that clearing
// the queue-map table on mispredictions costs no measurable performance.
func BenchmarkAblationMapClearing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		clearing := distiq.IssueFIFOCfg(8, 8, 8, 16)
		keeping := distiq.IssueFIFOCfg(8, 8, 8, 16)
		keeping.Name += "_keepmap"
		keeping.Int.KeepMapOnMispredict = true
		keeping.FP.KeepMapOnMispredict = true
		ipcClear := ablationIPC(b, "gcc", clearing) // branchy benchmark
		ipcKeep := ablationIPC(b, "gcc", keeping)
		b.ReportMetric(100*(ipcKeep/ipcClear-1), "keepmap-gain%")
	}
}

// BenchmarkAblationFirstTimePriority quantifies MixBUFF's first-time-ready
// selection priority (section 3.2's heuristic for avoiding instructions
// delayed by cache misses or cross-queue dependences).
func BenchmarkAblationFirstTimePriority(b *testing.B) {
	for i := 0; i < b.N; i++ {
		with := distiq.MBDistr()
		without := distiq.MBDistr()
		without.Name += "_flat"
		without.FP.FlatSelectPriority = true
		ipcWith := ablationIPC(b, "equake", with)
		ipcFlat := ablationIPC(b, "equake", without)
		b.ReportMetric(100*(ipcWith/ipcFlat-1), "priority-gain%")
	}
}

// BenchmarkAblationAdaptiveBaseline compares the static IQ_64_64 baseline
// against the Folegnani-González resizing extension: energy saved per IPC
// point lost.
func BenchmarkAblationAdaptiveBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opt := distiq.Options{Warmup: 5_000, Instructions: 25_000}
		static, err := distiq.Run("swim", distiq.Baseline64(), opt)
		if err != nil {
			b.Fatal(err)
		}
		adaptive, err := distiq.Run("swim", distiq.AdaptiveBaseline64(), opt)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*(1-adaptive.IQEnergy/static.IQEnergy), "energy-saved%")
		b.ReportMetric(100*(1-adaptive.IPC()/static.IPC()), "ipc-lost%")
	}
}

// BenchmarkAblationDisambiguation quantifies the conservative AllStoreAddr
// memory-ordering rule (which the paper's issue-time estimator models)
// against oracle disambiguation, on the pointer-heavy mcf model. With
// split stores (address issues independently of data), the gain is near
// zero — evidence that the paper's conservative rule is cheap on codes
// whose store addresses come from fast address arithmetic.
func BenchmarkAblationDisambiguation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run := func(perfect bool) float64 {
			model, err := distiq.WorkloadByName("mcf")
			if err != nil {
				b.Fatal(err)
			}
			_ = model
			cfg := distiq.DefaultProcessor(distiq.Baseline64())
			cfg.PerfectDisambiguation = perfect
			gen := newGenerator(b, "mcf")
			p, err := distiq.NewPipeline(cfg, gen)
			if err != nil {
				b.Fatal(err)
			}
			p.Warmup(5_000)
			p.Run(25_000)
			return p.Stats().IPC()
		}
		conservative := run(false)
		oracle := run(true)
		b.ReportMetric(100*(oracle/conservative-1), "oracle-gain%")
	}
}

// BenchmarkExtensionPreSched compares the Michaud-Seznec prescheduling
// extension against LatFIFO and MixBUFF on one FP benchmark: prescheduling
// recovers almost all of the baseline's IPC from a 16-entry CAM, at the
// complexity cost of a sorted full-window buffer (the trade-off the
// paper's related-work section describes).
func BenchmarkExtensionPreSched(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ps := ablationIPC(b, "galgel", distiq.PreSchedCfg(16, 16, 112, 16))
		mix := ablationIPC(b, "galgel", distiq.MixBUFFCfg(16, 16, 8, 16, 0))
		b.ReportMetric(100*(ps/mix-1), "presched-vs-mixbuff%")
	}
}
