package distiq_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links/images: [text](target).
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)[^)]*\)`)

// TestDocsRelativeLinks is the docs gate: every relative link in the
// repo's markdown (README plus docs/) must point at a file or directory
// that exists, so the documentation cannot silently rot as files move.
// External links are not fetched (CI must not depend on the network).
func TestDocsRelativeLinks(t *testing.T) {
	files := []string{"README.md"}
	docs, err := filepath.Glob("docs/*.md")
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, docs...)
	if len(files) < 3 {
		t.Fatalf("expected README.md plus at least docs/ARCHITECTURE.md and docs/API.md, found %v", files)
	}

	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		base := filepath.Dir(file)
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue // external
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue // same-file anchor
			}
			if _, err := os.Stat(filepath.Join(base, target)); err != nil {
				t.Errorf("%s: broken relative link %q", file, m[1])
			}
		}
	}
}

// TestDocsMentionEveryCommand keeps the README's command table in sync
// with cmd/: a new command must be documented.
func TestDocsMentionEveryCommand(t *testing.T) {
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir("cmd")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if !strings.Contains(string(readme), "cmd/"+e.Name()) {
			t.Errorf("README.md does not mention cmd/%s", e.Name())
		}
	}
}
