// Package distiq is a cycle-level reproduction of "Low-Complexity
// Distributed Issue Queue" (Jaume Abella and Antonio González, HPCA 2004).
//
// The library provides:
//
//   - the four issue-queue organizations the paper studies — the
//     conventional CAM/RAM baseline, dependence-based FIFOs (IssueFIFO),
//     latency-placed FIFOs (LatFIFO) and the paper's MixBUFF buffers of
//     dependence chains — plus the distributed-functional-unit variants
//     IF_distr and MB_distr;
//   - an 8-wide out-of-order superscalar timing model configured per the
//     paper's Table 1 (hybrid branch predictor, three-level memory system,
//     256-entry reorder buffer, 160+160 physical registers);
//   - 26 synthetic workload models standing in for SPEC2000;
//   - an analytic issue-logic energy model (Wattch/CACTI methodology) and
//     the paper's power-efficiency metrics (normalized power, energy,
//     energy-delay, energy-delay²);
//   - experiment harnesses regenerating every figure of the evaluation,
//     backed by a concurrent experiment engine.
//
// Quick start — the Client API is the front door: one context-aware
// interface over both execution substrates, the in-process engine
// (NewLocalClient) and a remote distiqd service (NewRemoteClient),
// configured with functional options:
//
//	cl := distiq.NewLocalClient(
//		distiq.WithParallel(8),                // worker-pool bound (0 = GOMAXPROCS)
//		distiq.WithCacheDir("/tmp/distiq-cache"), // reuse results across processes
//	)
//	res, err := cl.Run(ctx, distiq.Job{
//		Bench:  "swim",
//		Config: distiq.MBDistr(),
//		Opt:    distiq.DefaultOptions(),
//	})
//	if err != nil { ... }
//	fmt.Printf("IPC %.2f, issue-logic energy %.0f pJ\n", res.IPC(), res.IQEnergy)
//
// Whole experiment grids stream point by point, in deterministic grid
// order, whatever the parallelism:
//
//	grid, _ := distiq.NewScenario("rob-ablation").
//		WithSuites("fp").
//		WithNamed("MB_distr", "IQ_64_64").
//		WithROB(128, 256).
//		Expand()
//	stream := cl.Sweep(ctx, grid)
//	for stream.Next() {
//		u := stream.Update() // u.Index, u.Point, u.Result — grid order
//	}
//	if err := stream.Err(); err != nil { ... } // context.Canceled on Ctrl-C
//
// or collect everything through the shared emitters (byte-identical to
// iqsweep and the distiqd HTTP bodies):
//
//	res, err := cl.Sweep(ctx, grid).ResultSet()
//	fmt.Print(res.CSV())
//
// Swapping the substrate is one constructor — the rest of the program is
// unchanged:
//
//	var cl distiq.Client = distiq.NewRemoteClient("http://localhost:8090")
//
// Cancelling the context stops scheduling new simulations promptly;
// in-flight ones finish and persist, so a warm rerun completes only the
// remainder. To regenerate a figure from the paper:
//
//	s := distiq.NewSession(distiq.DefaultOptions())
//	table, err := distiq.Figure(8, s)
//	fmt.Print(table)
//
// # Experiment engine
//
// Clients (and the Session figure harness on top of them) delegate every
// benchmark × configuration job to the concurrent experiment engine
// (internal/engine). The engine shards independent jobs across a bounded
// worker pool (GOMAXPROCS-wide by default), deduplicates identical
// in-flight jobs single-flight style, and memoizes results in a
// goroutine-safe in-memory cache. Simulations are deterministic per job —
// the workload generators use per-instance seeded PRNGs and the pipeline
// holds no global state — so tables assembled from parallel runs are
// byte-identical to serial ones.
//
// With WithCacheDir, results also persist to an on-disk store shared
// across processes: one JSON file per result, content-addressed by a
// SHA-256 of the job's structural identity (benchmark, configuration name
// and shape, warmup and measured instruction counts, plus a format
// version), written atomically so concurrent engines can share a
// directory. A warm rerun of a figure or sweep performs zero new
// simulations.
//
// # Scenario grids
//
// The paper fixes the Table 1 machine and varies only the issue-queue
// organization. Scenario grids open the whole machine to the same cached
// engine: a declarative spec (JSON, or the builder below) names axes over
// benchmarks/suites, schemes and queue shapes, ROB size, pipeline widths,
// functional-unit counts, memory latencies and the perfect-disambiguation
// ablation; Expand crosses them into engine jobs and Run shards them
// across the worker pool with on-disk reuse. Results emit as CSV, JSON or
// markdown, in deterministic grid order at any parallelism.
//
//	spec := distiq.NewScenario("rob-ablation").
//		WithSuites("fp").
//		WithNamed("MB_distr", "IQ_64_64").
//		WithROB(128, 256).
//		WithPerfectDisambiguation(false, true).
//		WithLengths(10_000, 60_000)
//	grid, err := spec.Expand()
//	if err != nil { ... }
//	res, err := grid.Run(distiq.ScenarioRunConfig{CacheDir: "/tmp/distiq-cache"})
//	if err != nil { ... }
//	fmt.Print(res.CSV())
//
// The same grid as JSON (cmd/iqsweep -spec accepts this format):
//
//	{
//	  "name": "rob-ablation",
//	  "suites": ["fp"],
//	  "schemes": [{"scheme": "MB_distr"}, {"scheme": "IQ_64_64"}],
//	  "rob": [128, 256],
//	  "perfect_disambiguation": [false, true]
//	}
//
// # Performance
//
// The per-job hot path is engineered to be allocation-free in steady
// state: the cycle loop pools instruction objects, threads completion
// events through an intrusive list, and sorts issue candidates in
// place. Benchmark traces are generated once per process and replayed
// from a shared bounded trace cache (internal/trace.Cache); replay is
// bit-exact, so results, figure bytes and store fingerprints are
// unchanged by caching. cmd/iqbench measures both layers over a fixed
// matrix and writes BENCH_<date>.json, the repo's recorded performance
// trajectory. See docs/ARCHITECTURE.md for the full picture.
package distiq

import (
	"distiq/internal/client"
	"distiq/internal/core"
	"distiq/internal/engine"
	"distiq/internal/isa"
	"distiq/internal/pipeline"
	"distiq/internal/scenario"
	"distiq/internal/serve"
	"distiq/internal/sim"
	"distiq/internal/study"
	"distiq/internal/trace"
)

// Client layer types: the unified, context-aware experiment API. A
// Client resolves single jobs (Run) and scenario grids (Sweep, streaming
// per-point results in deterministic grid order); LocalClient executes
// in process on the concurrent engine, RemoteClient speaks to a distiqd
// service — same interface, same bytes out.
type (
	// Client is the one experiment interface over every execution
	// substrate.
	Client = client.Client
	// LocalClient runs jobs on the in-process concurrent engine.
	LocalClient = client.Local
	// RemoteClient runs jobs on a distiqd service over its streaming
	// NDJSON endpoint.
	RemoteClient = client.Remote
	// FleetClient shards sweeps across N distiqd workers by job
	// fingerprint, requeueing a dead worker's points onto survivors.
	FleetClient = client.Fleet
	// FleetStats is a snapshot of a FleetClient's delivery, requeue and
	// worker-loss counters.
	FleetStats = client.FleetStats
	// Job identifies one unit of experiment work (benchmark,
	// configuration, sizing, optional machine override).
	Job = client.Job
	// SweepStream delivers a sweep's per-point results in grid order.
	SweepStream = client.Stream
	// SweepUpdate is one resolved grid point of a stream.
	SweepUpdate = client.Update
	// SweepCounts aggregates a stream's resolution sources.
	SweepCounts = client.Counts
	// ClientOption configures NewLocalClient / NewRemoteClient.
	ClientOption = client.Option
)

// Client layer entry points.
var (
	// NewLocalClient returns the in-process Client. Options:
	// WithParallel, WithCacheDir, WithProgress.
	NewLocalClient = client.NewLocal
	// NewRemoteClient returns the Client for the distiqd at a base URL.
	// Options: WithHTTPClient.
	NewRemoteClient = client.NewRemote
	// NewFleetClient returns the Client over a list of distiqd worker
	// base URLs. Options: WithHTTPClient, WithFleetRetry,
	// WithFleetStreams.
	NewFleetClient = client.NewFleet
	// WithFleetRetry tunes a fleet client's per-point attempt budget and
	// retry backoff.
	WithFleetRetry = client.WithFleetRetry
	// WithFleetStreams bounds a fleet client's in-flight sub-sweeps per
	// worker.
	WithFleetStreams = client.WithFleetStreams
	// WithParallel bounds a local client's concurrent simulations.
	WithParallel = client.WithParallel
	// WithCacheDir persists a local client's results to the shared
	// distiq-v2 store.
	WithCacheDir = client.WithCacheDir
	// WithStore backs a local client with an explicit result-store
	// backend (takes precedence over WithCacheDir; the caller closes it).
	WithStore = client.WithStore
	// WithProgress installs a per-resolved-job callback on a local
	// client.
	WithProgress = client.WithProgress
	// WithHTTPClient overrides a remote client's http.Client.
	WithHTTPClient = client.WithHTTPClient
)

// Result-store backends: the persistent layer under the engine is an
// interface, with four interchangeable stdlib-only implementations —
// the on-disk distiq-v2 store, an in-memory store, an HTTP blob store
// (speaking a minimal S3-like GET/PUT/HEAD protocol, server included in
// internal/blobstore), and a read-through tier over other stores — plus
// a write-behind Batcher that group-commits puts over any of them.
// Every backend stores the same canonical entry bytes, so manifests
// verify byte-identically whichever backend holds the results.
type (
	// ResultStore is the persistent result-store interface consulted by
	// the engine on miss and written through on completed simulations.
	ResultStore = engine.ResultStore
	// FSStore is the on-disk distiq-v2 content-addressed store.
	FSStore = engine.Store
	// MemStore is the in-memory ResultStore.
	MemStore = engine.MemStore
	// HTTPStore is the ResultStore over a remote HTTP blob server.
	HTTPStore = engine.HTTPStore
	// TieredStore reads through an ordered list of stores (fastest
	// first) and writes through to all of them.
	TieredStore = engine.Tiered
	// StoreBatcher is the write-behind group-commit wrapper; Close
	// flushes the final group.
	StoreBatcher = engine.Batcher
	// StoreBatcherConfig bounds a StoreBatcher's queue and flush
	// thresholds.
	StoreBatcherConfig = engine.BatcherConfig
)

// Result-store entry points.
var (
	// OpenStore builds a ResultStore from a -store spec string: fs:DIR,
	// mem, http(s)://URL, tier:SPEC,SPEC,... or batch:SPEC.
	OpenStore = engine.OpenStore
	// ParseStoreSpec validates a -store spec's syntax and returns the
	// fs: directories it names.
	ParseStoreSpec = engine.ParseStoreSpec
	// NewFSStore returns the on-disk store rooted at a directory.
	NewFSStore = engine.NewStore
	// NewMemStore returns an empty in-memory store.
	NewMemStore = engine.NewMemStore
	// NewHTTPStore returns a store speaking to an HTTP blob server.
	NewHTTPStore = engine.NewHTTPStore
	// NewTieredStore layers stores fastest-first into one read-through,
	// write-through ResultStore.
	NewTieredStore = engine.NewTiered
	// NewStoreBatcher wraps a store with write-behind group commit.
	NewStoreBatcher = engine.NewBatcher
)

// Sweep integrity: every successfully completed sweep carries a
// tamper-evident manifest — a Merkle tree (RFC 6962 leaf/node hashing
// over SHA-256) whose leaves are the content-addressed hashes of the
// grid's stored result entries in grid order. SweepStream.Manifest
// returns it after full consumption; `iqsweep -manifest` writes it and
// `iqsweep -verify-manifest` re-hashes a store offline against it.
type (
	// Manifest is the tamper-evident Merkle manifest of one sweep.
	Manifest = engine.Manifest
	// ManifestLeaf is one grid point's entry in a Manifest.
	ManifestLeaf = engine.ManifestLeaf
)

// Manifest entry points.
var (
	// BuildManifest computes the manifest for jobs and their results.
	BuildManifest = engine.BuildManifest
	// LoadManifest reads a manifest JSON file and checks its internal
	// consistency (leaf order, hash syntax, Merkle root).
	LoadManifest = engine.LoadManifest
)

// Service embedding: the distiqd HTTP experiment service as a library,
// for programs that want to host the API themselves (see
// examples/remotesweep).
type (
	// Server is the HTTP experiment service (an http.Handler).
	Server = serve.Server
	// ServerConfig configures a Server.
	ServerConfig = serve.Config
)

// NewServer returns the HTTP experiment service around a fresh engine.
var NewServer = serve.New

// Core configuration types.
type (
	// Config names a complete issue-logic configuration (both domains
	// plus functional-unit wiring).
	Config = core.Config
	// DomainConfig configures one domain's issue scheme.
	DomainConfig = core.DomainConfig
	// Kind selects an issue-queue organization.
	Kind = core.Kind
	// Scheme is the issue-queue interface; implement it (and pass it
	// through DomainConfig.Custom) to evaluate new organizations.
	Scheme = core.Scheme
	// Env is the pipeline interface available to schemes.
	Env = core.Env
	// SchemeOptions carries cross-cutting scheme construction inputs.
	SchemeOptions = core.Options
)

// Issue-queue organization kinds.
const (
	KindCAM       = core.KindCAM
	KindIssueFIFO = core.KindIssueFIFO
	KindLatFIFO   = core.KindLatFIFO
	KindMixBUFF   = core.KindMixBUFF
)

// Named configurations from the paper.
var (
	// Unbounded is the section 3 reference: issue queues as large as
	// the reorder buffer.
	Unbounded = core.Unbounded
	// Baseline64 is IQ_64_64, the evaluation baseline.
	Baseline64 = core.Baseline64
	// IssueFIFOCfg returns IssueFIFO_AxB_CxD.
	IssueFIFOCfg = core.IssueFIFOCfg
	// LatFIFOCfg returns LatFIFO_AxB_CxD.
	LatFIFOCfg = core.LatFIFOCfg
	// MixBUFFCfg returns MixBUFF_AxB_CxD with a chain bound per queue.
	MixBUFFCfg = core.MixBUFFCfg
	// IFDistr is IssueFIFO_8x8_8x16 with distributed functional units.
	IFDistr = core.IFDistr
	// MBDistr is the paper's proposal: MixBUFF_8x8_8x16, 8 chains per
	// queue, distributed functional units.
	MBDistr = core.MBDistr
)

// Simulation types.
type (
	// Options controls warmup and measured instruction counts.
	Options = sim.Options
	// Result is one benchmark × configuration outcome.
	Result = sim.Result
	// Session memoizes runs across figures; all methods are
	// goroutine-safe and batches fan out across the engine's workers.
	Session = sim.Session
	// SessionConfig configures a Session's engine: parallelism,
	// persistent cache directory and progress reporting.
	//
	// Deprecated: construct a Client with NewLocalClient and the
	// functional options instead; SessionConfig remains as a thin shim
	// over exactly that client.
	SessionConfig = sim.SessionConfig
	// EngineStats counts how jobs were resolved (simulated, memory
	// hits, disk hits, deduplicated).
	EngineStats = engine.Stats
	// Progress describes one resolved engine job.
	Progress = engine.Progress
	// ConsoleReporter renders engine progress as a status line.
	ConsoleReporter = engine.ConsoleReporter
	// Table is a rendered experiment result.
	Table = sim.Table
	// ProcessorConfig is the full Table 1 machine description.
	ProcessorConfig = pipeline.Config
	// Suite identifies SPECINT or SPECFP stand-ins.
	Suite = trace.Suite
	// Workload describes one synthetic benchmark model.
	Workload = trace.Model
)

// Benchmark suites.
const (
	SuiteInt = trace.SuiteInt
	SuiteFP  = trace.SuiteFP
)

// Simulation entry points.
var (
	// DefaultOptions is suitable for regenerating all figures.
	DefaultOptions = sim.DefaultOptions
	// QuickOptions is for smoke tests.
	QuickOptions = sim.QuickOptions
	// Run simulates one benchmark under one configuration.
	Run = sim.Run
	// NewSession returns a memoizing experiment session.
	NewSession = sim.NewSession
	// NewSessionWith returns a session with explicit engine
	// configuration (parallelism, cache directory, progress).
	//
	// Deprecated: build a LocalClient with the functional options and
	// wrap it with NewSessionClient; this shim does exactly that.
	NewSessionWith = sim.NewSessionWith
	// NewSessionClient returns a figure session running every job
	// through an existing LocalClient (sharing its caches and worker
	// pool); bind a context with Session.WithContext to make figure
	// generation cancellable.
	NewSessionClient = sim.NewSessionClient
	// NewConsoleReporter returns a progress reporter for
	// SessionConfig.Progress, writing a status line to w.
	NewConsoleReporter = engine.NewConsoleReporter
	// Figure regenerates a figure of the paper (2-4, 6-15).
	Figure = sim.Figure
	// FigureNumbers lists the reproducible figures.
	FigureNumbers = sim.FigureNumbers
	// Table1 renders the processor configuration.
	Table1 = sim.Table1

	// Benchmarks lists a suite's workload names in figure order;
	// AllBenchmarks lists every workload.
	Benchmarks    = trace.Benchmarks
	AllBenchmarks = trace.AllBenchmarks
	// WorkloadByName returns the model behind a benchmark name.
	WorkloadByName = trace.ByName

	// DefaultProcessor returns the Table 1 machine around an issue
	// configuration; NewPipeline builds a simulator from it for callers
	// that need cycle-level control (see examples/customscheme).
	DefaultProcessor = pipeline.DefaultConfig
	NewPipeline      = pipeline.New
)

// Scenario grid types: declarative full-machine experiment sweeps
// through the cached engine.
type (
	// ScenarioSpec is a declarative experiment grid over benchmarks,
	// schemes and full-machine axes; build one with NewScenario or
	// parse JSON with ParseScenarioSpec/LoadScenarioSpec.
	ScenarioSpec = scenario.Spec
	// SchemeAxis is one issue-queue organization axis of a grid.
	SchemeAxis = scenario.SchemeAxis
	// ScenarioGrid is a spec's expanded cross-product of jobs.
	ScenarioGrid = scenario.Grid
	// ScenarioPoint is one expanded grid cell.
	ScenarioPoint = scenario.Point
	// ScenarioResults pairs a grid with its results and emits CSV,
	// JSON or markdown.
	ScenarioResults = scenario.ResultSet
	// ScenarioRunConfig configures grid execution (parallelism,
	// persistent cache, progress).
	//
	// Deprecated: sweep grids through the Client layer
	// (NewLocalClient(...).Sweep), which adds cancellation and
	// per-point streaming over the same engine.
	ScenarioRunConfig = scenario.RunConfig
	// Machine overrides full-machine parameters on one engine job
	// (nil = the paper's Table 1 machine).
	Machine = engine.Machine
)

// Scenario grid entry points.
var (
	// NewScenario starts a builder-style grid spec.
	NewScenario = scenario.New
	// ParseScenarioSpec decodes a JSON grid spec (strict: unknown
	// axes are errors).
	ParseScenarioSpec = scenario.ParseSpec
	// LoadScenarioSpec reads and parses a JSON grid spec file.
	LoadScenarioSpec = scenario.LoadSpec
)

// Study types: comparative experiment orchestration on top of the
// Client layer. A study — built with NewStudy or parsed from strict
// JSON — runs unchanged on any Client (Local, Remote, Fleet) in one of
// three modes: ablation (baseline + named feature-toggle variants,
// emitted as a deterministic variant × metric delta table), replication
// (variants fanned across RNG seeds with mean/stddev/95% CI columns)
// and frontier (an adaptive energy-vs-IPC Pareto search over a discrete
// configuration space). Tables use fixed-point formatting, so documents
// are byte-identical across substrates and warm-cache reruns.
//
//	spec := distiq.NewStudy("scheme-ablation").
//		Ablation().
//		WithSuites("fp").
//		WithVariants(
//			distiq.StudyVariant{Name: "proposed", Scheme: "MB_distr"},
//			distiq.StudyVariant{Name: "small-rob", ROB: 128},
//		)
//	res, err := distiq.RunStudy(ctx, cl, spec)
//	if err != nil { ... }
//	fmt.Print(res.CSV())
type (
	// StudySpec is a strict-JSON study description (ablation,
	// replication or frontier); build one with NewStudy or parse with
	// ParseStudySpec/LoadStudySpec.
	StudySpec = study.Spec
	// StudyVariant is one named feature-toggle set applied over a
	// study's baseline.
	StudyVariant = study.Variant
	// StudySpace is the discrete configuration space a frontier search
	// explores.
	StudySpace = study.Space
	// StudyResult is a finished study's deterministic table (CSV, JSON
	// and markdown emitters) plus trajectory and resolution counts.
	StudyResult = study.Result
	// StudyRound summarizes one frontier search round.
	StudyRound = study.Round
	// StudyOptions tunes a study run (per-point streaming hook).
	StudyOptions = study.Options
	// StudyPointUpdate is one resolved point of a running study.
	StudyPointUpdate = study.PointUpdate
)

// Study entry points.
var (
	// NewStudy starts a builder-style study spec.
	NewStudy = study.New
	// ParseStudySpec decodes a JSON study spec (strict: unknown fields
	// are errors).
	ParseStudySpec = study.ParseSpec
	// LoadStudySpec reads and parses a JSON study spec file.
	LoadStudySpec = study.LoadSpec
	// RunStudy executes a study against any Client and returns its
	// table.
	RunStudy = study.Run
	// RunStudyOpts is RunStudy with explicit options.
	RunStudyOpts = study.RunOpts
)

// Domains of the split issue logic.
const (
	IntDomain = isa.IntDomain
	FPDomain  = isa.FPDomain
)

// AdaptiveBaseline64 is IQ_64_64 with Folegnani-González dynamic resizing
// (an extension beyond the paper's evaluated configurations).
var AdaptiveBaseline64 = core.AdaptiveBaseline64

// PreSchedCfg is the Michaud-Seznec two-level data-flow prescheduling
// organization (the paper's reference [18]), provided as an extension
// comparator: a D-entry wakeup-free preschedule buffer promoting into a
// small first-level CAM queue.
var PreSchedCfg = core.PreSchedCfg

// CycleTimeStudy runs the cycle-time what-if extension: the paper's
// closing argument that simplified issue logic could shorten the clock,
// quantified as ED² versus hypothetical clock advantage plus the
// break-even point per scheme and suite.
var CycleTimeStudy = sim.CycleTimeStudy
