// Package distiq is a cycle-level reproduction of "Low-Complexity
// Distributed Issue Queue" (Jaume Abella and Antonio González, HPCA 2004).
//
// The library provides:
//
//   - the four issue-queue organizations the paper studies — the
//     conventional CAM/RAM baseline, dependence-based FIFOs (IssueFIFO),
//     latency-placed FIFOs (LatFIFO) and the paper's MixBUFF buffers of
//     dependence chains — plus the distributed-functional-unit variants
//     IF_distr and MB_distr;
//   - an 8-wide out-of-order superscalar timing model configured per the
//     paper's Table 1 (hybrid branch predictor, three-level memory system,
//     256-entry reorder buffer, 160+160 physical registers);
//   - 26 synthetic workload models standing in for SPEC2000;
//   - an analytic issue-logic energy model (Wattch/CACTI methodology) and
//     the paper's power-efficiency metrics (normalized power, energy,
//     energy-delay, energy-delay²);
//   - experiment harnesses regenerating every figure of the evaluation,
//     backed by a concurrent experiment engine.
//
// Quick start:
//
//	res, err := distiq.Run("swim", distiq.MBDistr(), distiq.DefaultOptions())
//	if err != nil { ... }
//	fmt.Printf("IPC %.2f, issue-logic energy %.0f pJ\n", res.IPC(), res.IQEnergy)
//
// To regenerate a figure from the paper:
//
//	s := distiq.NewSession(distiq.DefaultOptions())
//	table, err := distiq.Figure(8, s)
//	fmt.Print(table)
//
// # Experiment engine
//
// A Session delegates every benchmark × configuration job to the
// concurrent experiment engine (internal/engine). The engine shards
// independent jobs across a bounded worker pool (GOMAXPROCS-wide by
// default), deduplicates identical in-flight jobs single-flight style, and
// memoizes results in a goroutine-safe in-memory cache. Simulations are
// deterministic per job — the workload generators use per-instance seeded
// PRNGs and the pipeline holds no global state — so tables assembled from
// parallel runs are byte-identical to serial ones.
//
// NewSessionWith exposes the engine's knobs. With a CacheDir, results
// also persist to an on-disk store shared across processes: one JSON file
// per result, content-addressed by a SHA-256 of the job's structural
// identity (benchmark, configuration name and shape, warmup and measured
// instruction counts, plus a format version), written atomically so
// concurrent engines can share a directory. A warm rerun of a figure or
// sweep performs zero new simulations.
//
//	s := distiq.NewSessionWith(distiq.SessionConfig{
//		Opt:      distiq.DefaultOptions(),
//		Parallel: 8,                  // worker-pool bound (0 = GOMAXPROCS)
//		CacheDir: "/tmp/distiq-cache", // reuse results across processes
//	})
//	table, err := distiq.Figure(8, s)
//
// # Scenario grids
//
// The paper fixes the Table 1 machine and varies only the issue-queue
// organization. Scenario grids open the whole machine to the same cached
// engine: a declarative spec (JSON, or the builder below) names axes over
// benchmarks/suites, schemes and queue shapes, ROB size, pipeline widths,
// functional-unit counts, memory latencies and the perfect-disambiguation
// ablation; Expand crosses them into engine jobs and Run shards them
// across the worker pool with on-disk reuse. Results emit as CSV, JSON or
// markdown, in deterministic grid order at any parallelism.
//
//	spec := distiq.NewScenario("rob-ablation").
//		WithSuites("fp").
//		WithNamed("MB_distr", "IQ_64_64").
//		WithROB(128, 256).
//		WithPerfectDisambiguation(false, true).
//		WithLengths(10_000, 60_000)
//	grid, err := spec.Expand()
//	if err != nil { ... }
//	res, err := grid.Run(distiq.ScenarioRunConfig{CacheDir: "/tmp/distiq-cache"})
//	if err != nil { ... }
//	fmt.Print(res.CSV())
//
// The same grid as JSON (cmd/iqsweep -spec accepts this format):
//
//	{
//	  "name": "rob-ablation",
//	  "suites": ["fp"],
//	  "schemes": [{"scheme": "MB_distr"}, {"scheme": "IQ_64_64"}],
//	  "rob": [128, 256],
//	  "perfect_disambiguation": [false, true]
//	}
//
// # Performance
//
// The per-job hot path is engineered to be allocation-free in steady
// state: the cycle loop pools instruction objects, threads completion
// events through an intrusive list, and sorts issue candidates in
// place. Benchmark traces are generated once per process and replayed
// from a shared bounded trace cache (internal/trace.Cache); replay is
// bit-exact, so results, figure bytes and store fingerprints are
// unchanged by caching. cmd/iqbench measures both layers over a fixed
// matrix and writes BENCH_<date>.json, the repo's recorded performance
// trajectory. See docs/ARCHITECTURE.md for the full picture.
package distiq

import (
	"distiq/internal/core"
	"distiq/internal/engine"
	"distiq/internal/isa"
	"distiq/internal/pipeline"
	"distiq/internal/scenario"
	"distiq/internal/sim"
	"distiq/internal/trace"
)

// Core configuration types.
type (
	// Config names a complete issue-logic configuration (both domains
	// plus functional-unit wiring).
	Config = core.Config
	// DomainConfig configures one domain's issue scheme.
	DomainConfig = core.DomainConfig
	// Kind selects an issue-queue organization.
	Kind = core.Kind
	// Scheme is the issue-queue interface; implement it (and pass it
	// through DomainConfig.Custom) to evaluate new organizations.
	Scheme = core.Scheme
	// Env is the pipeline interface available to schemes.
	Env = core.Env
	// SchemeOptions carries cross-cutting scheme construction inputs.
	SchemeOptions = core.Options
)

// Issue-queue organization kinds.
const (
	KindCAM       = core.KindCAM
	KindIssueFIFO = core.KindIssueFIFO
	KindLatFIFO   = core.KindLatFIFO
	KindMixBUFF   = core.KindMixBUFF
)

// Named configurations from the paper.
var (
	// Unbounded is the section 3 reference: issue queues as large as
	// the reorder buffer.
	Unbounded = core.Unbounded
	// Baseline64 is IQ_64_64, the evaluation baseline.
	Baseline64 = core.Baseline64
	// IssueFIFOCfg returns IssueFIFO_AxB_CxD.
	IssueFIFOCfg = core.IssueFIFOCfg
	// LatFIFOCfg returns LatFIFO_AxB_CxD.
	LatFIFOCfg = core.LatFIFOCfg
	// MixBUFFCfg returns MixBUFF_AxB_CxD with a chain bound per queue.
	MixBUFFCfg = core.MixBUFFCfg
	// IFDistr is IssueFIFO_8x8_8x16 with distributed functional units.
	IFDistr = core.IFDistr
	// MBDistr is the paper's proposal: MixBUFF_8x8_8x16, 8 chains per
	// queue, distributed functional units.
	MBDistr = core.MBDistr
)

// Simulation types.
type (
	// Options controls warmup and measured instruction counts.
	Options = sim.Options
	// Result is one benchmark × configuration outcome.
	Result = sim.Result
	// Session memoizes runs across figures; all methods are
	// goroutine-safe and batches fan out across the engine's workers.
	Session = sim.Session
	// SessionConfig configures a Session's engine: parallelism,
	// persistent cache directory and progress reporting.
	SessionConfig = sim.SessionConfig
	// EngineStats counts how jobs were resolved (simulated, memory
	// hits, disk hits, deduplicated).
	EngineStats = engine.Stats
	// Progress describes one resolved engine job.
	Progress = engine.Progress
	// ConsoleReporter renders engine progress as a status line.
	ConsoleReporter = engine.ConsoleReporter
	// Table is a rendered experiment result.
	Table = sim.Table
	// ProcessorConfig is the full Table 1 machine description.
	ProcessorConfig = pipeline.Config
	// Suite identifies SPECINT or SPECFP stand-ins.
	Suite = trace.Suite
	// Workload describes one synthetic benchmark model.
	Workload = trace.Model
)

// Benchmark suites.
const (
	SuiteInt = trace.SuiteInt
	SuiteFP  = trace.SuiteFP
)

// Simulation entry points.
var (
	// DefaultOptions is suitable for regenerating all figures.
	DefaultOptions = sim.DefaultOptions
	// QuickOptions is for smoke tests.
	QuickOptions = sim.QuickOptions
	// Run simulates one benchmark under one configuration.
	Run = sim.Run
	// NewSession returns a memoizing experiment session.
	NewSession = sim.NewSession
	// NewSessionWith returns a session with explicit engine
	// configuration (parallelism, cache directory, progress).
	NewSessionWith = sim.NewSessionWith
	// NewConsoleReporter returns a progress reporter for
	// SessionConfig.Progress, writing a status line to w.
	NewConsoleReporter = engine.NewConsoleReporter
	// Figure regenerates a figure of the paper (2-4, 6-15).
	Figure = sim.Figure
	// FigureNumbers lists the reproducible figures.
	FigureNumbers = sim.FigureNumbers
	// Table1 renders the processor configuration.
	Table1 = sim.Table1

	// Benchmarks lists a suite's workload names in figure order;
	// AllBenchmarks lists every workload.
	Benchmarks    = trace.Benchmarks
	AllBenchmarks = trace.AllBenchmarks
	// WorkloadByName returns the model behind a benchmark name.
	WorkloadByName = trace.ByName

	// DefaultProcessor returns the Table 1 machine around an issue
	// configuration; NewPipeline builds a simulator from it for callers
	// that need cycle-level control (see examples/customscheme).
	DefaultProcessor = pipeline.DefaultConfig
	NewPipeline      = pipeline.New
)

// Scenario grid types: declarative full-machine experiment sweeps
// through the cached engine.
type (
	// ScenarioSpec is a declarative experiment grid over benchmarks,
	// schemes and full-machine axes; build one with NewScenario or
	// parse JSON with ParseScenarioSpec/LoadScenarioSpec.
	ScenarioSpec = scenario.Spec
	// SchemeAxis is one issue-queue organization axis of a grid.
	SchemeAxis = scenario.SchemeAxis
	// ScenarioGrid is a spec's expanded cross-product of jobs.
	ScenarioGrid = scenario.Grid
	// ScenarioPoint is one expanded grid cell.
	ScenarioPoint = scenario.Point
	// ScenarioResults pairs a grid with its results and emits CSV,
	// JSON or markdown.
	ScenarioResults = scenario.ResultSet
	// ScenarioRunConfig configures grid execution (parallelism,
	// persistent cache, progress).
	ScenarioRunConfig = scenario.RunConfig
	// Machine overrides full-machine parameters on one engine job
	// (nil = the paper's Table 1 machine).
	Machine = engine.Machine
)

// Scenario grid entry points.
var (
	// NewScenario starts a builder-style grid spec.
	NewScenario = scenario.New
	// ParseScenarioSpec decodes a JSON grid spec (strict: unknown
	// axes are errors).
	ParseScenarioSpec = scenario.ParseSpec
	// LoadScenarioSpec reads and parses a JSON grid spec file.
	LoadScenarioSpec = scenario.LoadSpec
)

// Domains of the split issue logic.
const (
	IntDomain = isa.IntDomain
	FPDomain  = isa.FPDomain
)

// AdaptiveBaseline64 is IQ_64_64 with Folegnani-González dynamic resizing
// (an extension beyond the paper's evaluated configurations).
var AdaptiveBaseline64 = core.AdaptiveBaseline64

// PreSchedCfg is the Michaud-Seznec two-level data-flow prescheduling
// organization (the paper's reference [18]), provided as an extension
// comparator: a D-entry wakeup-free preschedule buffer promoting into a
// small first-level CAM queue.
var PreSchedCfg = core.PreSchedCfg

// CycleTimeStudy runs the cycle-time what-if extension: the paper's
// closing argument that simplified issue logic could shorten the clock,
// quantified as ED² versus hypothetical clock advantage plus the
// break-even point per scheme and suite.
var CycleTimeStudy = sim.CycleTimeStudy
