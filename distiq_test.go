package distiq_test

import (
	"strings"
	"testing"

	"distiq"
)

func TestPublicRun(t *testing.T) {
	res, err := distiq.Run("gzip", distiq.MBDistr(), distiq.QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC() <= 0 {
		t.Fatal("no progress through public API")
	}
	if res.Config != "MB_distr" {
		t.Fatalf("config = %s", res.Config)
	}
}

func TestPublicBenchmarkLists(t *testing.T) {
	if len(distiq.AllBenchmarks()) != 26 {
		t.Fatal("benchmark list wrong")
	}
	if len(distiq.Benchmarks(distiq.SuiteFP)) != 14 {
		t.Fatal("FP suite wrong")
	}
	if _, err := distiq.WorkloadByName("swim"); err != nil {
		t.Fatal(err)
	}
}

func TestPublicFigure(t *testing.T) {
	s := distiq.NewSession(distiq.Options{Warmup: 1000, Instructions: 5000})
	tab, err := distiq.Figure(12, s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.String(), "MB_distr") {
		t.Fatal("figure table missing MB_distr")
	}
}

func TestPublicNamedConfigs(t *testing.T) {
	for _, cfg := range []distiq.Config{
		distiq.Unbounded(), distiq.Baseline64(),
		distiq.IssueFIFOCfg(8, 8, 8, 16), distiq.LatFIFOCfg(8, 8, 8, 16),
		distiq.MixBUFFCfg(8, 8, 8, 16, 8), distiq.IFDistr(), distiq.MBDistr(),
	} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
}

func TestPublicTable1(t *testing.T) {
	if !strings.Contains(distiq.Table1(), "Reorder buffer") {
		t.Fatal("Table 1 incomplete")
	}
}
