package distiq_test

import (
	"context"
	"fmt"
	"log"

	"distiq"
)

// The Client API: one context-aware interface over local and remote
// execution. A LocalClient runs on the in-process engine; swapping in
// NewRemoteClient pointed at a distiqd changes nothing else.
func ExampleNewLocalClient() {
	cl := distiq.NewLocalClient(distiq.WithParallel(2))
	res, err := cl.Run(context.Background(), distiq.Job{
		Bench:  "swim",
		Config: distiq.MBDistr(),
		Opt:    distiq.QuickOptions(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s under %s: resolved %v instructions through the Client layer\n",
		res.Benchmark, res.Config, res.Insts > 0)
	// Output:
	// swim under MB_distr: resolved true instructions through the Client layer
}

// Sweep a scenario grid through the Client API, streaming results in
// deterministic grid order.
func ExampleLocalClient_Sweep() {
	grid, err := distiq.NewScenario("rob").
		WithBenchmarks("swim").
		WithNamed("MB_distr").
		WithROB(128, 256).
		WithLengths(1_000, 5_000).
		Expand()
	if err != nil {
		log.Fatal(err)
	}
	cl := distiq.NewLocalClient(distiq.WithParallel(2))
	stream := cl.Sweep(context.Background(), grid)
	for stream.Next() {
		u := stream.Update()
		fmt.Printf("point %d: %s rob=%s\n", u.Index, u.Point.Bench, u.Point.Values[4])
	}
	if err := stream.Err(); err != nil {
		log.Fatal(err)
	}
	// Output:
	// point 0: swim rob=128
	// point 1: swim rob=256
}

// Simulate one benchmark under the paper's proposed configuration and
// inspect performance and issue-logic energy.
func ExampleRun() {
	res, err := distiq.Run("swim", distiq.MBDistr(), distiq.QuickOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s under %s: IPC and energy are deterministic across runs\n",
		res.Benchmark, res.Config)
	// Output:
	// swim under MB_distr: IPC and energy are deterministic across runs
}

// Regenerate a figure from the paper's evaluation. Sessions memoize runs,
// so generating several figures shares their common baselines.
func ExampleFigure() {
	s := distiq.NewSession(distiq.Options{Warmup: 1_000, Instructions: 5_000})
	tab, err := distiq.Figure(12, s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tab.Title)
	fmt.Println(tab.Rows[0].Label) // the baseline row
	// Output:
	// Figure 12: normalized issue-queue power
	// IQ_64_64
}

// Compare two configurations on one benchmark — the shape of every
// experiment in the paper.
func ExampleConfig() {
	opt := distiq.QuickOptions()
	base, err := distiq.Run("lucas", distiq.Baseline64(), opt)
	if err != nil {
		log.Fatal(err)
	}
	prop, err := distiq.Run("lucas", distiq.MBDistr(), opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MB_distr uses less issue-queue energy: %v\n", prop.IQEnergy < base.IQEnergy)
	// Output:
	// MB_distr uses less issue-queue energy: true
}

// Sweep a custom configuration space using the named constructors.
func ExampleMixBUFFCfg() {
	cfg := distiq.MixBUFFCfg(8, 8, 10, 16, 4)
	fmt.Println(cfg.Name, cfg.FP.Chains)
	// Output:
	// MixBUFF_8x8_10x16 4
}
