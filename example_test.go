package distiq_test

import (
	"fmt"
	"log"

	"distiq"
)

// Simulate one benchmark under the paper's proposed configuration and
// inspect performance and issue-logic energy.
func ExampleRun() {
	res, err := distiq.Run("swim", distiq.MBDistr(), distiq.QuickOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s under %s: IPC and energy are deterministic across runs\n",
		res.Benchmark, res.Config)
	// Output:
	// swim under MB_distr: IPC and energy are deterministic across runs
}

// Regenerate a figure from the paper's evaluation. Sessions memoize runs,
// so generating several figures shares their common baselines.
func ExampleFigure() {
	s := distiq.NewSession(distiq.Options{Warmup: 1_000, Instructions: 5_000})
	tab, err := distiq.Figure(12, s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tab.Title)
	fmt.Println(tab.Rows[0].Label) // the baseline row
	// Output:
	// Figure 12: normalized issue-queue power
	// IQ_64_64
}

// Compare two configurations on one benchmark — the shape of every
// experiment in the paper.
func ExampleConfig() {
	opt := distiq.QuickOptions()
	base, err := distiq.Run("lucas", distiq.Baseline64(), opt)
	if err != nil {
		log.Fatal(err)
	}
	prop, err := distiq.Run("lucas", distiq.MBDistr(), opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MB_distr uses less issue-queue energy: %v\n", prop.IQEnergy < base.IQEnergy)
	// Output:
	// MB_distr uses less issue-queue energy: true
}

// Sweep a custom configuration space using the named constructors.
func ExampleMixBUFFCfg() {
	cfg := distiq.MixBUFFCfg(8, 8, 10, 16, 4)
	fmt.Println(cfg.Name, cfg.FP.Chains)
	// Output:
	// MixBUFF_8x8_10x16 4
}
